"""Common VM machinery: resident set, LRU replacement, touch/fault flow.

Both VM variants share this base: a set of resident pages backed by
physical frames, true-LRU replacement (the paper: "The system uses an LRU
algorithm for page replacement"), and per-access time accounting.  The
variants differ only in what happens on the two interesting edges —
evicting a victim and satisfying a fault — which subclasses implement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..ccache.allocator import ThreeWayAllocator
from ..mem.frames import FrameOwner, FramePool
from ..mem.lru import LruList
from ..mem.page import PageId, PageState
from ..mem.pagetable import PageTableEntry
from ..mem.segment import AddressSpace
from ..sim.costs import CostModel
from ..sim.ledger import Ledger, TimeCategory
from ..sim.metrics import SimulationMetrics
from .faults import FaultSource


class BaseVM(ABC):
    """Shared resident-set management for both VM systems.

    Args:
        address_space: the workload's segments and page contents.
        frames: the machine's physical frame pool.
        allocator: global frame arbiter; this VM registers itself as the
            ``FrameOwner.VM`` pool.
        ledger: virtual-time sink.
        costs: CPU-side cost model.
        min_resident_frames: the VM refuses to shrink below this many
            resident pages, so a process always makes forward progress.
    """

    def __init__(
        self,
        address_space: AddressSpace,
        frames: FramePool,
        allocator: ThreeWayAllocator,
        ledger: Ledger,
        costs: CostModel,
        min_resident_frames: int = 2,
    ):
        if min_resident_frames < 1:
            raise ValueError(
                f"min_resident_frames must be >= 1: {min_resident_frames}"
            )
        self.address_space = address_space
        self.frames = frames
        self.allocator = allocator
        self.ledger = ledger
        self.costs = costs
        self.min_resident_frames = min_resident_frames
        self.metrics = SimulationMetrics()
        self._resident: LruList[PageId] = LruList()
        #: Control-plane fault telemetry (host-side accounting only —
        #: never charges the clock); ``None`` on every default machine.
        self.telemetry = None
        allocator.register(FrameOwner.VM, self)

    # ------------------------------------------------------------------
    # MemoryPool protocol (for the three-way allocator)
    # ------------------------------------------------------------------

    def coldest_age(self, now: float) -> Optional[float]:
        """Age of the LRU resident page."""
        return self._resident.coldest_age(now)

    def shrink_one(self) -> Optional[float]:
        """Evict the LRU resident page and release its frame."""
        if len(self._resident) <= self.min_resident_frames:
            return None
        victim = self._resident.evict()
        self._evict(self.address_space.entry(victim))
        return 0.0

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Pages currently resident and uncompressed."""
        return len(self._resident)

    def is_resident(self, page_id: PageId) -> bool:
        """True when the page is mapped uncompressed."""
        return page_id in self._resident

    def touch(self, page_id: PageId, write: bool = False) -> None:
        """One memory reference; faults and charges time as needed."""
        metrics = self.metrics
        metrics.accesses += 1
        if write:
            metrics.write_accesses += 1
        else:
            metrics.read_accesses += 1
        ledger = self.ledger
        ledger.charge(TimeCategory.BASE, self.costs.base_access_s)

        # Fast path: a resident hit fuses the membership probe with the
        # LRU re-stamp, and a read hit never needs the page-table entry
        # at all (a resident page's PTE already exists; only the dirty
        # bit would touch it).
        if self._resident.hit(page_id, ledger.now):
            metrics.resident_hits += 1
            if write:
                self.address_space.entry(page_id).dirty = True
        else:
            pte = self.address_space.entry(page_id)
            self._fault(pte)
            if write:
                pte.dirty = True
            self._resident.touch(page_id, ledger.now)
        self._after_access()

    def _fault(self, pte: PageTableEntry) -> None:
        """Bring ``pte`` resident, charging trap, transfer, and CPU time."""
        self.metrics.faults.total += 1
        fault_start = self.ledger.now
        self.ledger.charge(TimeCategory.FAULT_TRAP, self.costs.fault_trap_s)
        source = self._fill(pte)
        self.metrics.fault_latency.record(self.ledger.now - fault_start)
        if source == FaultSource.CCACHE:
            self.metrics.faults.from_ccache += 1
        elif source == FaultSource.FRAGSTORE:
            self.metrics.faults.from_fragstore += 1
        elif source == FaultSource.SWAP:
            self.metrics.faults.from_swap += 1
        else:
            self.metrics.faults.zero_fill += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.note_fault(source.value, self.ledger.now)

    def _obtain_frame(self) -> int:
        """Get a physical frame for a faulting page."""
        return self.allocator.obtain_frame(FrameOwner.VM)

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------

    @abstractmethod
    def _fill(self, pte: PageTableEntry) -> FaultSource:
        """Make ``pte`` resident (frame allocated, data restored)."""

    @abstractmethod
    def _evict(self, pte: PageTableEntry) -> None:
        """Push a resident page out, preserving its data as required."""

    def _after_access(self) -> None:
        """Hook run after every access (cleaner scheduling, etc.)."""

    # ------------------------------------------------------------------
    # Teardown / invariants
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Evict everything (end of run), flushing state to stable form."""
        while len(self._resident) > 0:
            victim = self._resident.evict()
            self._evict(self.address_space.entry(victim))

    def check_invariants(self) -> None:
        """Cross-checks used by the test suite (cheap, always safe)."""
        for page_id in self._resident:
            pte = self.address_space.entry(page_id)
            assert pte.state == PageState.RESIDENT, (
                f"{page_id} in resident LRU but state is {pte.state}"
            )
            assert pte.frame is not None, f"{page_id} resident without frame"
