"""The paper's benchmark applications, reimplemented as reference streams."""

from .base import Workload
from .compare import CompareWorkload
from .diurnal import DiurnalWorkload
from .gold import GoldWorkload
from .isca import CacheSimWorkload
from .multiprogram import MultiProgramWorkload
from .relaunch import AppRelaunchWorkload
from .sortw import SortWorkload
from .synthetic import SyntheticWorkload
from .thrasher import Thrasher

__all__ = [
    "AppRelaunchWorkload",
    "CacheSimWorkload",
    "CompareWorkload",
    "DiurnalWorkload",
    "GoldWorkload",
    "MultiProgramWorkload",
    "SortWorkload",
    "SyntheticWorkload",
    "Thrasher",
    "Workload",
]
