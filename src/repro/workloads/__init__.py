"""The paper's benchmark applications, reimplemented as reference streams."""

from .base import Workload
from .compare import CompareWorkload
from .gold import GoldWorkload
from .isca import CacheSimWorkload
from .multiprogram import MultiProgramWorkload
from .sortw import SortWorkload
from .synthetic import SyntheticWorkload
from .thrasher import Thrasher

__all__ = [
    "CacheSimWorkload",
    "CompareWorkload",
    "GoldWorkload",
    "MultiProgramWorkload",
    "SortWorkload",
    "SyntheticWorkload",
    "Thrasher",
    "Workload",
]
