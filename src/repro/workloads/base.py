"""Workload framework.

A workload owns an address space layout (segments with honest page
contents) and emits a stream of page-granularity events.  The same
workload instance can be replayed against both machine configurations
(standard and compression cache) — references are generated
deterministically from the workload's parameters.

Application CPU time: the paper's Table 1 measures whole programs, whose
run times mix computation with paging.  Each workload exposes
``compute_seconds_per_ref``; the Table 1 harness calibrates it so the
*standard-system* run time matches the paper's ``Time (std)`` column, and
the compression-cache time (and hence the speedup) is then an emergent
result.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional

from ..mem.page import DEFAULT_PAGE_SIZE
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef


class Workload(ABC):
    """One application from the paper's evaluation."""

    #: Short identifier used in tables (e.g. "compare", "gold_warm").
    name: str = "workload"

    #: Extra CPU charged per emitted reference (calibrated; see module doc).
    compute_seconds_per_ref: float = 0.0

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._space: Optional[AddressSpace] = None

    @property
    def address_space(self) -> AddressSpace:
        """The built address space (raises before :meth:`build`)."""
        if self._space is None:
            raise RuntimeError(f"workload {self.name!r} was never built")
        return self._space

    def build(self) -> AddressSpace:
        """Create the address space and segments; idempotent."""
        if self._space is None:
            self._space = AddressSpace(page_size=self.page_size)
            self._build(self._space)
        return self._space

    def build_into(self, space: AddressSpace) -> None:
        """Build this workload's segments inside a shared address space.

        Used by multiprogrammed runs: each program gets its own segments
        (and therefore distinct page ids) inside one machine-wide space,
        matching the paper's "collective address space of all running
        processes".
        """
        if self._space is not None:
            raise RuntimeError(f"workload {self.name!r} was already built")
        if space.page_size != self.page_size:
            raise ValueError(
                f"shared space page size {space.page_size} != "
                f"workload page size {self.page_size}"
            )
        self._space = space
        self._build(space)

    @abstractmethod
    def _build(self, space: AddressSpace) -> None:
        """Create segments in ``space``."""

    @abstractmethod
    def _references(self) -> Iterator[PageRef]:
        """The raw reference stream (without calibrated compute time)."""

    def references(self) -> Iterator[PageRef]:
        """The measured event stream, with calibrated CPU time applied."""
        self.build()
        extra = self.compute_seconds_per_ref
        if extra <= 0.0:
            yield from self._references()
            return
        for ref in self._references():
            yield PageRef(
                page_id=ref.page_id,
                write=ref.write,
                mutate=ref.mutate,
                compute_seconds=ref.compute_seconds + extra,
            )

    def setup_references(self) -> Iterator[PageRef]:
        """Optional unmeasured warm-up stream (e.g. loading gold's index
        before running queries).  Default: nothing."""
        return iter(())

    def reference_count(self) -> int:
        """Number of events :meth:`references` will emit (for calibration)."""
        count = 0
        for _ in self._references():
            count += 1
        return count
