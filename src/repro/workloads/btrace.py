"""Compact binary reference traces with a streaming, mmap-backed reader.

The text format in :mod:`repro.sim.trace` is convenient to eyeball but
costs ~30 bytes and one ``str.split`` per reference; a multiprogram
trace of 10M references is a 300-MByte parse.  This module stores the
same information as fixed-width little-endian records so a trace can be
memory-mapped and replayed in chunks without ever materializing one
python object per reference.

On-disk layout (version 1), all fields little-endian::

    header   16 bytes   magic ``b"RBT1"``, u8 version, u8 record_size,
                        u16 reserved, u64 record count
    records  16 bytes   u8 op (bit 0 = write, other bits reserved),
             each       u8 reserved,
                        u16 segment id,
                        u32 page number,
                        u32 kind fingerprint (opaque content-kind tag;
                            0 = unknown),
                        u32 tick (application compute time, microseconds)

Mutations cannot be serialized (they are closures), so — exactly like
the text format — write records replay with the engine's default
one-word mutation.  The kind fingerprint exists for trace analysis
tooling (grouping references by content class); the simulator itself
never interprets it.

The reader hands out *column chunks* (parallel lists of writes, segment
ids, page numbers, and ticks) rather than record objects; the engine's
batch dispatch (:meth:`repro.sim.engine.SimulationEngine.run_trace`)
consumes them directly.  With numpy available the columns are decoded by
a single structured-dtype view per chunk; without it a
``struct.iter_unpack`` fallback produces identical values.
"""

from __future__ import annotations

import io
import mmap
import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from ..mem.page import PageId
from ..sim.engine import PageRef
from ..sim.trace import TraceFormatError

try:  # numpy is the optional [fast] extra; the reader works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via fast=False
    _np = None

MAGIC = b"RBT1"
VERSION = 1
RECORD_SIZE = 16
HEADER = struct.Struct("<4sBBHQ")  # magic, version, record size, pad, count
RECORD = struct.Struct("<BBHIII")  # op, pad, segment, number, kind, tick
assert HEADER.size == 16 and RECORD.size == RECORD_SIZE

_OP_WRITE = 0x01

#: numpy structured view of one record; field offsets match RECORD.
if _np is not None:
    RECORD_DTYPE = _np.dtype(
        [
            ("op", "u1"),
            ("pad", "u1"),
            ("segment", "<u2"),
            ("number", "<u4"),
            ("kind", "<u4"),
            ("tick", "<u4"),
        ]
    )
    assert RECORD_DTYPE.itemsize == RECORD_SIZE
else:  # pragma: no cover - no-numpy environments
    RECORD_DTYPE = None

#: One decoded chunk: (writes, segments, numbers, ticks_us) as parallel
#: plain-python lists, identical from both decode backends.
TraceChunk = Tuple[List[int], List[int], List[int], List[int]]


def pack_record(
    segment: int,
    number: int,
    write: bool,
    kind: int = 0,
    tick_us: int = 0,
) -> bytes:
    """Encode one reference as its 16-byte record."""
    if not 0 <= segment <= 0xFFFF:
        raise ValueError(f"segment id out of u16 range: {segment}")
    if not 0 <= number <= 0xFFFFFFFF:
        raise ValueError(f"page number out of u32 range: {number}")
    return RECORD.pack(
        _OP_WRITE if write else 0,
        0,
        segment,
        number,
        kind & 0xFFFFFFFF,
        min(max(tick_us, 0), 0xFFFFFFFF),
    )


def pack_ref(ref: PageRef, kind: int = 0) -> bytes:
    """Encode a :class:`~repro.sim.engine.PageRef` (dropping mutations)."""
    return pack_record(
        ref.page_id.segment,
        ref.page_id.number,
        ref.write,
        kind=kind,
        tick_us=round(ref.compute_seconds * 1e6),
    )


class BinaryTraceWriter:
    """Streams records to a file; never holds the trace in memory.

    Usable as a context manager; the header (which carries the record
    count) is back-patched on :meth:`close`.
    """

    def __init__(self, target: Union[str, Path, io.BufferedIOBase]):
        if isinstance(target, (str, Path)):
            self._handle = open(target, "wb")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.count = 0
        self._closed = False
        self._handle.write(HEADER.pack(MAGIC, VERSION, RECORD_SIZE, 0, 0))

    def append(self, ref: PageRef, kind: int = 0) -> None:
        self._handle.write(pack_ref(ref, kind=kind))
        self.count += 1

    def append_record(
        self,
        segment: int,
        number: int,
        write: bool,
        kind: int = 0,
        tick_us: int = 0,
    ) -> None:
        self._handle.write(
            pack_record(segment, number, write, kind=kind, tick_us=tick_us)
        )
        self.count += 1

    def append_raw(self, records: bytes, count: int) -> None:
        """Append pre-packed records (e.g. a repeated block) verbatim."""
        if len(records) != count * RECORD_SIZE:
            raise ValueError(
                f"raw block of {len(records)} bytes is not "
                f"{count} x {RECORD_SIZE}-byte records"
            )
        self._handle.write(records)
        self.count += count

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._handle.seek(0)
        self._handle.write(
            HEADER.pack(MAGIC, VERSION, RECORD_SIZE, 0, self.count)
        )
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def dump(
    target: Union[str, Path, io.BufferedIOBase],
    references: Iterable[PageRef],
    max_events: Optional[int] = None,
) -> int:
    """Record a reference stream to ``target``; returns the event count."""
    with BinaryTraceWriter(target) as writer:
        for ref in references:
            if max_events is not None and writer.count >= max_events:
                break
            writer.append(ref)
        return writer.count


class BinaryTraceReader:
    """Streaming access to a binary trace.

    Args:
        source: path (memory-mapped by default) or an in-memory buffer.
        use_mmap: map the file instead of reading it into memory; the OS
            pages the trace in on demand, so replaying a multi-hundred-
            MByte trace costs only the chunk window of resident memory.
        fast: ``False`` forces the ``struct.iter_unpack`` decode path
            even when numpy is importable (the two backends are
            value-identical; this exists for tests and diagnostics).

    The full file structure is validated up front: bad magic, an unknown
    version, a foreign record size, a truncated record region, or a
    count/size mismatch all raise
    :class:`~repro.sim.trace.TraceFormatError` at construction.
    """

    def __init__(
        self,
        source: Union[str, Path, bytes, bytearray, memoryview],
        use_mmap: bool = True,
        fast: Optional[bool] = None,
    ):
        self._mmap: Optional[mmap.mmap] = None
        if isinstance(source, (str, Path)):
            with open(source, "rb") as handle:
                if use_mmap:
                    try:
                        self._mmap = mmap.mmap(
                            handle.fileno(), 0, access=mmap.ACCESS_READ
                        )
                        buf: Union[mmap.mmap, bytes] = self._mmap
                    except ValueError:
                        # Zero-byte file: cannot be mapped, and cannot be
                        # a trace either (no header).  Fall through with
                        # an empty buffer so the header check reports it.
                        buf = b""
                else:
                    buf = handle.read()
        else:
            buf = bytes(source)
        self._buf = buf
        self._fast = fast is not False and _np is not None
        size = len(buf)
        if size < HEADER.size:
            self.close()
            raise TraceFormatError(
                f"binary trace shorter than its {HEADER.size}-byte header "
                f"({size} bytes)"
            )
        magic, version, record_size, _, count = HEADER.unpack_from(buf, 0)
        if magic != MAGIC:
            self.close()
            raise TraceFormatError(f"bad binary-trace magic: {magic!r}")
        if version != VERSION:
            self.close()
            raise TraceFormatError(
                f"unsupported binary-trace version {version} "
                f"(this reader speaks v{VERSION})"
            )
        if record_size != RECORD_SIZE:
            self.close()
            raise TraceFormatError(
                f"record size {record_size} != expected {RECORD_SIZE}"
            )
        body = len(buf) - HEADER.size
        if body != count * RECORD_SIZE:
            self.close()
            raise TraceFormatError(
                f"trace declares {count} records "
                f"({count * RECORD_SIZE} bytes) but carries {body} bytes "
                f"of records — truncated or corrupt"
            )
        self._count = count

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def mmapped(self) -> bool:
        """Whether the trace is memory-mapped rather than resident."""
        return self._mmap is not None

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._buf = b""

    def __enter__(self) -> "BinaryTraceReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def chunks(self, chunk_size: int = 65536) -> Iterator[TraceChunk]:
        """Yield ``(writes, segments, numbers, ticks_us)`` column chunks.

        Each element is a plain-python list of ints (``writes`` entries
        are 0/1), at most ``chunk_size`` long; both decode backends
        produce identical values.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        if self._fast:
            yield from self._chunks_numpy(chunk_size)
        else:
            yield from self._chunks_struct(chunk_size)

    def _chunks_numpy(self, chunk_size: int) -> Iterator[TraceChunk]:
        # One zero-copy structured view over the whole record region
        # (mmap included — numpy reads through the mapping lazily).
        arr = _np.frombuffer(
            self._buf, dtype=RECORD_DTYPE, count=self._count,
            offset=HEADER.size,
        )
        for start in range(0, self._count, chunk_size):
            part = arr[start:start + chunk_size]
            yield (
                (part["op"] & _OP_WRITE).tolist(),
                part["segment"].tolist(),
                part["number"].tolist(),
                part["tick"].tolist(),
            )

    def _chunks_struct(self, chunk_size: int) -> Iterator[TraceChunk]:
        view = memoryview(self._buf)
        for start in range(0, self._count, chunk_size):
            n = min(chunk_size, self._count - start)
            lo = HEADER.size + start * RECORD_SIZE
            writes: List[int] = []
            segments: List[int] = []
            numbers: List[int] = []
            ticks: List[int] = []
            for op, _, segment, number, _, tick in RECORD.iter_unpack(
                view[lo:lo + n * RECORD_SIZE]
            ):
                writes.append(op & _OP_WRITE)
                segments.append(segment)
                numbers.append(number)
                ticks.append(tick)
            yield (writes, segments, numbers, ticks)

    def kinds(self, chunk_size: int = 65536) -> Iterator[List[int]]:
        """Yield the kind-fingerprint column (analysis tooling only)."""
        if self._fast:
            arr = _np.frombuffer(
                self._buf, dtype=RECORD_DTYPE, count=self._count,
                offset=HEADER.size,
            )
            for start in range(0, self._count, chunk_size):
                yield arr["kind"][start:start + chunk_size].tolist()
        else:
            view = memoryview(self._buf)
            for start in range(0, self._count, chunk_size):
                n = min(chunk_size, self._count - start)
                lo = HEADER.size + start * RECORD_SIZE
                yield [
                    rec[4]
                    for rec in RECORD.iter_unpack(
                        view[lo:lo + n * RECORD_SIZE]
                    )
                ]

    def __iter__(self) -> Iterator[PageRef]:
        """Compatibility iterator: one PageRef per record.

        Materializes python objects per reference — fine for analysis
        and tests; the engine's batch dispatch uses :meth:`chunks`.
        """
        interned = {}
        for writes, segments, numbers, ticks in self.chunks():
            for write, segment, number, tick in zip(
                writes, segments, numbers, ticks
            ):
                key = (segment, number)
                page_id = interned.get(key)
                if page_id is None:
                    page_id = interned[key] = PageId(segment, number)
                yield PageRef(
                    page_id=page_id,
                    write=bool(write),
                    compute_seconds=tick / 1e6 if tick else 0.0,
                )
