"""The ``compare`` workload: banded dynamic-programming file differencing.

Section 5.2: the application "computes the sequence of modifications to
change one file into another" with "a dynamic programming algorithm"
(Lipton and Lopresti's systolic string comparison).  It "uses a
two-dimensional array, of which only a wide stripe along the diagonal is
accessed.  It works its way through the array in one direction, and then
reverses direction and goes linearly back to the beginning."  The
recurrence "causes frequent repetitions in values", so the array
compresses about 3:1 with LZRW1.

The page-level access pattern this emits:

* a forward fill pass: each band row is computed from the previous one,
  touching the previous row's page (read) and the current page (write),
  with per-cell CPU work;
* a backward traceback pass: reads the stripe linearly in reverse.

Both passes are strictly sequential — the pattern the paper credits for
compare's 2.68x speedup, because sequential sweeps over a too-large array
fault on every page whether or not memory is set aside for compressed
copies.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Sequence, Tuple

from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import dp_band_values


def banded_edit_distance(
    a: Sequence, b: Sequence, band: int
) -> Tuple[int, List[List[int]]]:
    """Banded Levenshtein distance (the Lipton–Lopresti computation).

    Only cells within ``band`` of the diagonal are evaluated — "a
    two-dimensional array, of which only a wide stripe along the
    diagonal is accessed".  Returns (distance, band rows), where row i
    holds the computed window of DP row i (cells j in
    ``[i - band, i + band]`` clipped to b's length).  When the true
    distance is at most ``band`` the result equals the full DP's; cells
    outside the stripe are treated as unreachable.

    Raises:
        ValueError: when the band cannot connect the two corners
            (``|len(a) - len(b)| > band``).
    """
    if band < 0:
        raise ValueError(f"negative band: {band}")
    if abs(len(a) - len(b)) > band:
        raise ValueError(
            f"band {band} cannot align lengths {len(a)} and {len(b)}"
        )
    big = len(a) + len(b) + 1  # effectively infinity
    rows: List[List[int]] = []
    previous: List[int] = []
    for i in range(len(a) + 1):
        lo = max(0, i - band)
        hi = min(len(b), i + band)
        row = []
        for j in range(lo, hi + 1):
            if i == 0:
                value = j
            elif j == 0:
                value = i
            else:
                prev_lo = max(0, i - 1 - band)
                diag = (
                    previous[j - 1 - prev_lo]
                    if j - 1 >= prev_lo and j - 1 <= min(len(b), i - 1 + band)
                    else big
                )
                up = (
                    previous[j - prev_lo]
                    if j >= prev_lo and j <= min(len(b), i - 1 + band)
                    else big
                )
                left = row[-1] if j - 1 >= lo else big
                cost = 0 if a[i - 1] == b[j - 1] else 1
                value = min(diag + cost, up + 1, left + 1)
            row.append(value)
        rows.append(row)
        previous = row
    return rows[-1][-1], rows


class CompareWorkload(Workload):
    """Banded edit-distance computation over a stripe too big for memory.

    Args:
        band_bytes: size of the diagonal stripe actually materialized.
        round_trips: forward+backward passes (the algorithm description
            implies at least one full round trip; divide-and-conquer
            variants make several).
        cell_seconds: CPU time per DP cell; cells per page is
            ``page_size / 4`` (32-bit values).
    """

    name = "compare"

    def __init__(
        self,
        band_bytes: int,
        round_trips: int = 2,
        cell_seconds: float = 0.0,
        real_dp: bool = False,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if band_bytes <= 0 or round_trips <= 0:
            raise ValueError("band size and round trips must be positive")
        self.band_bytes = band_bytes
        self.round_trips = round_trips
        self.cell_seconds = cell_seconds
        #: Fill pages by actually running the banded DP (quadratic-ish in
        #: band size; meant for validation at small scales).  The default
        #: synthetic generator emulates the value distribution and is
        #: tested to compress like the real thing.
        self.real_dp = real_dp
        self.seed = seed
        self.npages = pages_for_bytes(band_bytes, page_size)
        self._segment_id = -1
        self._dp_bytes: bytes = b""

    def _real_dp_content(self, number: int) -> bytes:
        if not self._dp_bytes:
            import random as _random

            rng = _random.Random(self.seed ^ 0xD1FF)
            band_cells = 128
            total_cells = self.npages * self.page_size // 4
            length = max(2, total_cells // band_cells - 1)
            a = [rng.randrange(40) for _ in range(length)]
            b = list(a)
            for _ in range(max(1, length // 25)):  # ~4% edits
                position = rng.randrange(length)
                b[position] = rng.randrange(40)
            _, rows = banded_edit_distance(a, b, band=band_cells // 2 - 1)
            words: List[int] = []
            for row in rows:
                padded = (row + [0] * band_cells)[:band_cells]
                words.extend(padded)
            words.extend([0] * (total_cells - len(words)))
            self._dp_bytes = struct.pack(
                f"<{total_cells}I", *(w & 0xFFFFFFFF for w in words)
            )
        start = number * self.page_size
        return self._dp_bytes[start : start + self.page_size]

    def _build(self, space: AddressSpace) -> None:
        factory = (
            self._real_dp_content
            if self.real_dp
            else lambda n: dp_band_values(
                n, seed=self.seed, page_size=self.page_size
            )
        )
        segment = space.add_segment(
            "dp-band", self.npages, content_factory=factory
        )
        self._segment_id = segment.segment_id
        for number in range(self.npages):
            segment.entry(number).content.stable_key = (
                f"compare:{int(self.real_dp)}:{self.seed}:{number}"
            )

    def _references(self) -> Iterator[PageRef]:
        cells_per_page = self.page_size // 4
        page_compute = self.cell_seconds * cells_per_page
        for _ in range(self.round_trips):
            # Forward fill: row i reads row i-1's page, writes its own.
            for number in range(self.npages):
                if number > 0:
                    yield PageRef(PageId(self._segment_id, number - 1))
                yield PageRef(
                    PageId(self._segment_id, number),
                    write=True,
                    compute_seconds=page_compute,
                )
            # Backward traceback: linear reverse read.
            for number in range(self.npages - 1, -1, -1):
                yield PageRef(PageId(self._segment_id, number))

    def total_references(self) -> int:
        """Events per run: (2 * npages - 1) fill + npages traceback, per trip."""
        return self.round_trips * (3 * self.npages - 1)
