"""Page-content generators with controlled, *measured* compressibility.

Table 1's compressibility columns come from running LZRW1 on real pages,
so the reproduction's workloads must fill their pages with bytes whose
statistics resemble the original programs':

* ``compare``'s dynamic-programming band: 32-bit values from a recurrence
  with frequent plateaus — compresses about 3:1;
* ``sort``'s heap over shuffled dictionary words: nearly incompressible
  when "there was minimal repetition of strings within an individual
  4-Kbyte page", about 3:1 when the input repeats words within pages;
* ``gold``'s index engine: term strings plus posting arrays — "slightly
  worse than 2:1";
* the thrasher's array: compresses "roughly 4:1".

Every generator is deterministic in its arguments, so runs reproduce
bit-for-bit — which also makes each one a pure function, memoized below
with ``lru_cache``.  Workloads regenerate the same page many times (every
re-fault rebuilds its content), and generation costs far more than a dict
probe, so the memo is the difference between contentgen dominating a
simulation's wall-clock and vanishing from the profile.  The cached
values are immutable ``bytes``, safe to share between pages.
"""

from __future__ import annotations

import random
import struct
from functools import lru_cache
from typing import List, Tuple

from ..mem.page import DEFAULT_PAGE_SIZE

#: Distinct (generator, arguments) results kept; at the default 4-KByte
#: page size the memo tops out around 32 MBytes.
_PAGE_CACHE_SIZE = 8192


@lru_cache(maxsize=_PAGE_CACHE_SIZE)
def repeating_pattern(
    page_number: int,
    seed: int = 0,
    unique_bytes: int = 640,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> bytes:
    """A page that compresses to roughly ``unique_bytes / page_size``.

    A random prefix of ``unique_bytes`` is tiled across the page; LZ
    compressors reduce the repeats to copy items, so 640 unique bytes in
    a 4-KByte page gives the thrasher's "roughly 4:1" (measured LZRW1
    ratio ≈ 0.28).
    """
    if not 0 < unique_bytes <= page_size:
        raise ValueError(f"unique_bytes out of range: {unique_bytes}")
    rng = random.Random((seed << 32) ^ page_number ^ 0x5EED)
    prefix = bytes(rng.randrange(256) for _ in range(unique_bytes))
    reps = -(-page_size // unique_bytes)
    return (prefix * reps)[:page_size]


@lru_cache(maxsize=_PAGE_CACHE_SIZE)
def incompressible(
    page_number: int,
    seed: int = 0,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> bytes:
    """Uniformly random bytes: no compressor shrinks this page."""
    rng = random.Random((seed << 32) ^ page_number ^ 0xBADC0DE)
    return bytes(rng.randrange(256) for _ in range(page_size))


@lru_cache(maxsize=_PAGE_CACHE_SIZE)
def dp_band_values(
    page_number: int,
    seed: int = 0,
    page_size: int = DEFAULT_PAGE_SIZE,
    plateau_mean: float = 3.0,
) -> bytes:
    """32-bit dynamic-programming values with plateaus (compare's array).

    "Elements along the diagonal are based on a recurrence relation that
    causes frequent repetitions in values" (Section 5.2): cell values
    form short runs of equal integers stepping by small amounts.  Encoded
    little-endian, runs compress well; the steps break matches just often
    enough to land near the paper's 3:1 (measured LZRW1 ratio ≈ 0.32).
    """
    rng = random.Random((seed << 32) ^ page_number ^ 0xD1A60)
    nwords = page_size // 4
    words: List[int] = []
    value = rng.randrange(0, 1 << 16)
    while len(words) < nwords:
        run = max(1, int(rng.expovariate(1.0 / plateau_mean)))
        words.extend([value] * min(run, nwords - len(words)))
        value = (value + rng.choice((-1, 0, 1, 1, 2))) & 0xFFFFFFFF
    return struct.pack(f"<{nwords}I", *words)


_WORD_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@lru_cache(maxsize=16)
def _make_dictionary_cached(nwords: int, seed: int, min_len: int,
                            max_len: int) -> Tuple[bytes, ...]:
    rng = random.Random(seed)
    seen = set()
    words: List[bytes] = []
    while len(words) < nwords:
        length = rng.randrange(min_len, max_len + 1)
        word = "".join(rng.choice(_WORD_ALPHABET) for _ in range(length))
        if word not in seen:
            seen.add(word)
            words.append(word.encode("ascii"))
    return tuple(words)


def make_dictionary(nwords: int = 4096, seed: int = 7,
                    min_len: int = 5, max_len: int = 12) -> List[bytes]:
    """A synthetic /usr/dict/words: distinct lowercase words.

    Returns a fresh list each call (callers shuffle it); the expensive
    generation itself is memoized.
    """
    return list(_make_dictionary_cached(nwords, seed, min_len, max_len))


def text_page_random(
    page_number: int,
    dictionary: List[bytes],
    seed: int = 0,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> bytes:
    """Space-separated words drawn uniformly: minimal within-page repeats.

    This is the ``sort random`` heap: "there was minimal repetition of
    strings within an individual 4-Kbyte page", so about 98% of pages
    miss the 4:3 threshold.
    """
    return _text_page_random(
        page_number, tuple(dictionary), seed, page_size
    )


@lru_cache(maxsize=_PAGE_CACHE_SIZE)
def _text_page_random(
    page_number: int,
    dictionary: Tuple[bytes, ...],
    seed: int,
    page_size: int,
) -> bytes:
    rng = random.Random((seed << 32) ^ page_number ^ 0x7E47)
    buf = bytearray()
    while len(buf) < page_size:
        buf += rng.choice(dictionary)
        buf += b" "
    return bytes(buf[:page_size])


def text_page_clustered(
    page_number: int,
    dictionary: List[bytes],
    seed: int = 0,
    cluster_words: int = 30,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> bytes:
    """Words repeated within the page: the ``sort partial`` heap.

    "Substrings (or complete words) often repeated within a page of
    memory" — each page draws randomly from a small per-page cluster of
    words, so every word recurs many times at short range but in varied
    order.  With 30 distinct words the measured LZRW1 ratio is ≈ 0.29,
    the paper's "about 3:1".
    """
    return _text_page_clustered(
        page_number, tuple(dictionary), seed, cluster_words, page_size
    )


@lru_cache(maxsize=_PAGE_CACHE_SIZE)
def _text_page_clustered(
    page_number: int,
    dictionary: Tuple[bytes, ...],
    seed: int,
    cluster_words: int,
    page_size: int,
) -> bytes:
    rng = random.Random((seed << 32) ^ page_number ^ 0xC1E4)
    cluster = [rng.choice(dictionary) for _ in range(cluster_words)]
    buf = bytearray()
    while len(buf) < page_size:
        buf += rng.choice(cluster)
        buf += b" "
    return bytes(buf[:page_size])


@lru_cache(maxsize=_PAGE_CACHE_SIZE)
def index_page(
    page_number: int,
    seed: int = 0,
    page_size: int = DEFAULT_PAGE_SIZE,
    structured_fraction: float = 0.5,
    jitter: float = 0.12,
) -> bytes:
    """A main-memory index page of the Gold mailer's index engine.

    The engine "compresses slightly worse than 2:1": each hash-bucket
    page mixes a structured region — strided pointer words sharing high
    bytes, interleaved with zeroed fields, which compress very well —
    with packed posting/term payload bytes that are close to random.
    ``structured_fraction`` (jittered per page) sets the blend and thus
    the ratio; the default lands near the paper's 0.52–0.60 with a small
    tail of pages that miss the 4:3 threshold (measured ≈ 0.56 mean).
    """
    rng = random.Random((seed << 32) ^ page_number ^ 0x601D)
    fraction = min(0.95, max(0.05,
                             rng.gauss(structured_fraction, jitter)))
    structured_bytes = int(page_size * fraction) // 8 * 8
    base = rng.randrange(0, 1 << 24) << 6
    buf = bytearray()
    for i in range(structured_bytes // 8):
        if i % 6 == 0:  # occupied bucket slot: pointer + length
            buf += struct.pack(
                "<II", (base + i * 64) & 0xFFFFFFFF, rng.randrange(1, 16)
            )
        else:  # empty slot
            buf += bytes(8)
    while len(buf) < page_size:
        buf.append(rng.randrange(256))
    return bytes(buf[:page_size])


@lru_cache(maxsize=_PAGE_CACHE_SIZE)
def cache_table_page(
    page_number: int,
    seed: int = 0,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> bytes:
    """A cache-simulator state-table page (the ``isca`` workload).

    Arrays of (tag, state, counters) records: tags share high bits within
    a set, states come from a tiny alphabet, counters are small — the
    regular structure compresses about 3:1, matching Table 1's 32%.
    """
    rng = random.Random((seed << 32) ^ page_number ^ 0x15CA)
    buf = bytearray()
    base_tag = rng.randrange(0, 1 << 20) << 8
    index = 0
    while len(buf) < page_size:
        tag = base_tag | (index & 0xF)  # sequential ways within a set
        index += 1
        state = 0 if rng.random() < 0.85 else rng.choice((1, 1, 2, 3))
        counter = 0 if rng.random() < 0.95 else rng.randrange(1, 8)
        buf += struct.pack("<IBBH", tag & 0xFFFFFFFF, state, counter, 0)
        if rng.random() < 0.01:
            base_tag = rng.randrange(0, 1 << 20) << 8
    return bytes(buf[:page_size])
