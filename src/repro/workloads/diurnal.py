"""Diurnal traffic: a working set that breathes on a day/night cycle.

The scale-out roadmap (and every serving system) sees load that swells
and shrinks on a daily rhythm.  This workload models the memory-side
effect: the active working set sweeps between a nighttime trough and a
daytime peak on a deterministic triangle wave, so the right compressed-
tier geometry at noon is wrong at midnight — the scenario where a
closed-loop controller earns its keep against any static split.

Each phase performs full passes over the first ``N_phase`` pages of one
segment; pages past the trough go cold for whole phases at a time and
become prime demotion candidates, then return in a burst as the wave
rises again.
"""

from __future__ import annotations

from typing import Iterator, List

from ..mem.content import PageContent
from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import repeating_pattern


class DiurnalWorkload(Workload):
    """Triangle-wave working set over one segment.

    Args:
        space_bytes: the daytime-peak working set.
        phases: number of phases in the run (one full day is
            ``phases`` steps trough → peak → trough).
        passes_per_phase: full passes over the phase's active set.
        trough_fraction: nighttime share of the peak working set.
        write: dirty one word per page per pass.
        unique_bytes: content compressibility knob.
        seed: content seed.
    """

    def __init__(
        self,
        space_bytes: int,
        phases: int = 8,
        passes_per_phase: int = 2,
        trough_fraction: float = 0.25,
        write: bool = True,
        unique_bytes: int = 640,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if space_bytes <= 0:
            raise ValueError("space_bytes must be positive")
        if phases < 2:
            raise ValueError("phases must be >= 2")
        if passes_per_phase < 1:
            raise ValueError("passes_per_phase must be >= 1")
        if not 0.0 < trough_fraction <= 1.0:
            raise ValueError("trough_fraction must be in (0, 1]")
        self.space_bytes = space_bytes
        self.phases = phases
        self.passes_per_phase = passes_per_phase
        self.trough_fraction = trough_fraction
        self.write = write
        self.unique_bytes = unique_bytes
        self.seed = seed
        self.npages = pages_for_bytes(space_bytes, page_size)
        self.name = "diurnal"
        self._segment_id: int = -1

    def phase_pages(self) -> List[int]:
        """Active pages per phase: a trough → peak → trough triangle."""
        trough = max(1, int(self.npages * self.trough_fraction))
        half = self.phases // 2
        sizes = []
        for phase in range(self.phases):
            # Distance from the nearest trough, normalized to [0, 1].
            position = (phase % self.phases)
            rise = (position / half if position <= half
                    else (self.phases - position) / (self.phases - half))
            sizes.append(trough + int((self.npages - trough) * rise))
        return sizes

    def _build(self, space: AddressSpace) -> None:
        segment = space.add_segment(
            "diurnal",
            self.npages,
            content_factory=lambda n: repeating_pattern(
                n,
                seed=self.seed,
                unique_bytes=self.unique_bytes,
                page_size=self.page_size,
            ),
        )
        self._segment_id = segment.segment_id
        for number in range(self.npages):
            segment.entry(number).content.stable_key = (
                f"{self.name}:{self.seed}:{number}"
            )

    def _references(self) -> Iterator[PageRef]:
        for phase, active in enumerate(self.phase_pages()):
            for cycle in range(self.passes_per_phase):
                for number in range(active):
                    page_id = PageId(self._segment_id, number)
                    if self.write:
                        yield PageRef(
                            page_id=page_id,
                            write=True,
                            mutate=_store_phase_word(phase, cycle),
                        )
                    else:
                        yield PageRef(page_id=page_id)

    def total_references(self) -> int:
        """Events the run will emit."""
        return sum(self.phase_pages()) * self.passes_per_phase


def _store_phase_word(phase: int, cycle: int):
    """Mutation storing a phase/cycle tag into the page's first word."""

    def mutate(content: PageContent) -> None:
        content.store_word(0, (phase << 8 | cycle) + 1)

    return mutate
