"""The ``gold`` workload: a main-memory mail-index engine.

Table 1's worst cases come from "the 'index engine' for the Gold Mailer",
a main-memory database that "compresses slightly worse than 2:1" and has
"a high fraction of nonsequential page accesses ... each of which
requires a full 4-Kbyte read from backing store".  Three runs:

* ``gold create`` — "creates a new index from scratch.  It has a high
  degree of write accesses"; message text flows through as well, so 42%
  of compressed pages miss the 4:3 threshold.  0.90x.
* ``gold cold`` — "a sequence of queries against an existing gold index
  engine, with the index engine having just started.  Thus the index
  engine writes many pages as well as reading them."  0.80x.
* ``gold warm`` — "the same set of queries once gold cold has executed";
  mostly read-only faults on an established address space.  0.73x.

We implement the engine's memory behaviour as a real inverted index over
hash buckets: a query hashes its terms to buckets scattered across the
index segment (non-sequential reads), walks a few posting pages, and
occasionally updates access metadata.  Creation appends postings to
random buckets and streams message text.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import incompressible, index_page


class GoldWorkload(Workload):
    """The Gold mailer index engine's memory behaviour.

    Args:
        mode: "create", "cold", or "warm".
        index_bytes: size of the index segment.
        operations: messages indexed (create) or queries run (cold/warm).
        terms_per_operation: buckets touched per message/query.
        text_fraction: for create, fraction of touches that stream
            incompressible message text (drives the 42% uncompressible).
        update_rate: for queries, probability a bucket touch also writes
            (metadata updates; "a small number of pages are modified").
        hot_fraction / hot_probability: query locality — terms are
            Zipf-ish, so queries concentrate on a hot slice of the index.
            The hot slice is comparable to physical memory in the
            measured configuration, which is what makes the compression
            cache hurt: it converts would-be resident hits into
            decompressions and, under churn, into "full 4-Kbyte read[s]
            from backing store".
        op_seconds: CPU per operation (parsing, scoring).
    """

    MODES = ("create", "cold", "warm")

    def __init__(
        self,
        mode: str,
        index_bytes: int,
        operations: int,
        terms_per_operation: int = 6,
        text_fraction: float = 0.45,
        update_rate: float = 0.4,
        hot_fraction: float = 0.5,
        hot_probability: float = 0.8,
        op_seconds: float = 0.0,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}: {mode!r}")
        if index_bytes <= 0 or operations <= 0:
            raise ValueError("index size and operations must be positive")
        self.mode = mode
        self.index_bytes = index_bytes
        self.operations = operations
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of range: {hot_fraction}")
        if not 0.0 <= hot_probability <= 1.0:
            raise ValueError(
                f"hot_probability out of range: {hot_probability}"
            )
        self.terms_per_operation = terms_per_operation
        self.text_fraction = text_fraction
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.update_rate = update_rate if mode != "warm" else 0.04
        self.op_seconds = op_seconds
        self.seed = seed
        self.name = f"gold_{mode}"
        self.index_pages = pages_for_bytes(index_bytes, page_size)
        # Message-text staging buffers (reused ring, so their pages are
        # hot but incompressible).
        self.text_pages = max(4, pages_for_bytes(index_bytes // 8, page_size))
        self._index_segment = -1
        self._text_segment = -1

    def _build(self, space: AddressSpace) -> None:
        index = space.add_segment(
            "gold-index",
            self.index_pages,
            content_factory=lambda n: index_page(
                n, seed=self.seed, page_size=self.page_size
            ),
        )
        text = space.add_segment(
            "gold-text",
            self.text_pages,
            content_factory=lambda n: incompressible(
                n, seed=self.seed ^ 0x7E7, page_size=self.page_size
            ),
        )
        self._index_segment = index.segment_id
        self._text_segment = text.segment_id
        for number in range(self.index_pages):
            index.entry(number).content.stable_key = (
                f"gold:{self.seed}:idx:{number}"
            )
        for number in range(self.text_pages):
            text.entry(number).content.stable_key = (
                f"gold:{self.seed}:txt:{number}"
            )

    # ------------------------------------------------------------------
    # Reference streams
    # ------------------------------------------------------------------

    def _bucket(self, rng: random.Random) -> int:
        """Hash a term to a bucket page.

        Buckets scatter non-sequentially (the paper's "high fraction of
        nonsequential page accesses"), with terms concentrating on a hot
        slice of the index (mail terms are Zipf-distributed — common
        words hit the same buckets whether querying or indexing).
        """
        if rng.random() < self.hot_probability:
            hot_pages = max(1, int(self.index_pages * self.hot_fraction))
            return rng.randrange(hot_pages)
        return rng.randrange(self.index_pages)

    def _create_refs(self, rng: random.Random) -> Iterator[PageRef]:
        text_cursor = 0
        for _ in range(self.operations):
            # Stream the message body through the text ring.
            body_pages = 1 + rng.randrange(3)
            for _ in range(body_pages):
                if rng.random() < self.text_fraction:
                    yield PageRef(
                        PageId(self._text_segment,
                               text_cursor % self.text_pages),
                        write=True,
                        compute_seconds=self.op_seconds / 4,
                    )
                    text_cursor += 1
            # Append postings to each term's bucket, walking the bucket's
            # overflow chain to find the tail first.
            for _ in range(self.terms_per_operation):
                bucket = self._bucket(rng)
                if rng.random() < 0.5:
                    yield PageRef(
                        PageId(
                            self._index_segment,
                            (bucket + 1) % self.index_pages,
                        )
                    )
                yield PageRef(
                    PageId(self._index_segment, bucket),
                    write=True,
                    compute_seconds=self.op_seconds / self.terms_per_operation,
                )

    def _query_refs(self, rng: random.Random) -> Iterator[PageRef]:
        for _ in range(self.operations):
            for _ in range(self.terms_per_operation):
                bucket = self._bucket(rng)
                write = rng.random() < self.update_rate
                yield PageRef(
                    PageId(self._index_segment, bucket),
                    write=write,
                    compute_seconds=self.op_seconds / self.terms_per_operation,
                )
                # Walk a short posting chain: neighbouring overflow pages.
                for step in range(1, 1 + rng.randrange(2)):
                    yield PageRef(
                        PageId(
                            self._index_segment,
                            (bucket + step) % self.index_pages,
                        )
                    )

    def _references(self) -> Iterator[PageRef]:
        rng = random.Random(self.seed ^ 0x601D5EED)
        if self.mode == "create":
            yield from self._create_refs(rng)
        else:
            yield from self._query_refs(rng)

    def setup_references(self) -> Iterator[PageRef]:
        """Unmeasured warm-up.

        ``cold`` starts with the index on backing store (the engine "having
        just started"): a sequential pass writes every index page so it
        exists outside memory.  ``warm`` additionally runs the full query
        stream once ("once gold cold has executed").
        """
        self.build()
        if self.mode == "create":
            return
        for number in range(self.index_pages):
            yield PageRef(PageId(self._index_segment, number), write=True)
        if self.mode == "warm":
            rng = random.Random(self.seed ^ 0x601D5EED)
            yield from self._query_refs(rng)

    def total_references(self) -> int:
        """Rough event count of the measured stream."""
        if self.mode == "create":
            return self.operations * (self.terms_per_operation + 2)
        return int(self.operations * self.terms_per_operation * 1.5)
