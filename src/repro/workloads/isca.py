"""The ``isca`` workload: a multiprocessor cache-coherence simulator.

Table 1's second-best application is "Dubnicki's cache simulator, which
is both CPU-intensive and memory-intensive" (simulating adjustable block
size coherent caches).  We implement the essential structure of such a
simulator for real:

* its dominant data structure is a large table of per-set cache state —
  tags, MESI-style states, and reference counters — for every simulated
  processor, far larger than physical memory at full scale;
* it consumes a synthetic shared-memory trace: each event maps an
  address to a set, probes the owning processor's table page (read),
  and on misses or invalidations updates state in that page and possibly
  a peer processor's page (writes);
* every event also costs simulator CPU time (tag comparison, state
  machine) — the "CPU-intensive" half.

Set indices are drawn with temporal locality (a hot working set plus a
uniform tail), so the fault pattern mixes reuse with sweep — giving the
moderate 1.6x speedup shape rather than thrasher's extreme.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import cache_table_page, incompressible


class CacheSimWorkload(Workload):
    """Trace-driven coherence-simulator memory behaviour.

    Args:
        table_bytes: total size of the simulated-cache state tables.
        events: number of trace events processed.
        processors: simulated processors (each owns a slice of the table).
        hot_fraction: fraction of the table forming the hot set.
        hot_probability: probability an event hits the hot set.
        miss_rate: fraction of events that update state (writes).
        remote_rate: fraction of misses that also touch a peer's table.
        incompressible_fraction: fraction of table pages holding packed
            trace buffers that do not compress (Table 1: 1.7%).
        event_seconds: simulator CPU time per event.
    """

    name = "isca"

    def __init__(
        self,
        table_bytes: int,
        events: int,
        processors: int = 8,
        hot_fraction: float = 0.25,
        hot_probability: float = 0.7,
        miss_rate: float = 0.35,
        remote_rate: float = 0.2,
        incompressible_fraction: float = 0.017,
        event_seconds: float = 0.0,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if table_bytes <= 0 or events <= 0 or processors <= 0:
            raise ValueError("table size, events, processors must be positive")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of range: {hot_fraction}")
        self.table_bytes = table_bytes
        self.events = events
        self.processors = processors
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.miss_rate = miss_rate
        self.remote_rate = remote_rate
        self.incompressible_fraction = incompressible_fraction
        self.event_seconds = event_seconds
        self.seed = seed
        self.npages = pages_for_bytes(table_bytes, page_size)
        self._segment_id = -1

    def _content(self, number: int) -> bytes:
        # A deterministic sprinkling of packed (incompressible) pages.
        rng = random.Random((self.seed << 20) ^ number ^ 0x15CA0)
        if rng.random() < self.incompressible_fraction:
            return incompressible(number, seed=self.seed,
                                  page_size=self.page_size)
        return cache_table_page(number, seed=self.seed,
                                page_size=self.page_size)

    def _build(self, space: AddressSpace) -> None:
        segment = space.add_segment(
            "cache-tables", self.npages, content_factory=self._content
        )
        self._segment_id = segment.segment_id
        for number in range(self.npages):
            segment.entry(number).content.stable_key = (
                f"isca:{self.seed}:{number}"
            )

    def _pick_page(self, rng: random.Random) -> int:
        hot_pages = max(1, int(self.npages * self.hot_fraction))
        if rng.random() < self.hot_probability:
            return rng.randrange(hot_pages)
        return rng.randrange(self.npages)

    def _references(self) -> Iterator[PageRef]:
        rng = random.Random(self.seed ^ 0x15CA5EED)
        pages_per_cpu = max(1, self.npages // self.processors)
        for _ in range(self.events):
            page = self._pick_page(rng)
            page_id = PageId(self._segment_id, page)
            miss = rng.random() < self.miss_rate
            yield PageRef(
                page_id,
                write=miss,
                compute_seconds=self.event_seconds,
            )
            if miss and rng.random() < self.remote_rate:
                # Invalidation at a peer: same set offset, another CPU.
                peer = rng.randrange(self.processors)
                remote = (page + peer * pages_per_cpu) % self.npages
                yield PageRef(PageId(self._segment_id, remote), write=True)

    def total_references(self) -> int:
        """Approximate event count (remote touches add a stochastic ~7%)."""
        return self.events
