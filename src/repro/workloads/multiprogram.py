"""Multiprogrammed workloads.

Section 3: "It is possible for the collective address space of all
running processes not to fit in memory even after compression" — and the
three-way allocator, the cleaner, and the LRU pools all operate on the
machine's collective state, not per process.  This module timeshares
several workloads over one machine, round-robin with a configurable
quantum, the way a simple scheduler would interleave CPU-bound programs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload


class MultiProgramWorkload(Workload):
    """Round-robin interleaving of several programs on one machine.

    Args:
        programs: the child workloads; each receives its own segments in
            the shared address space.
        quantum: references a program issues before yielding the CPU.
            Small quanta stress the memory system (each switch drags a
            different working set back); large quanta approach serial
            execution.
    """

    name = "multiprogram"

    def __init__(self, programs: Sequence[Workload], quantum: int = 64):
        if not programs:
            raise ValueError("need at least one program")
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1: {quantum}")
        page_sizes = {program.page_size for program in programs}
        if len(page_sizes) > 1:
            raise ValueError(f"mixed page sizes: {sorted(page_sizes)}")
        super().__init__(page_size=programs[0].page_size)
        self.programs: List[Workload] = list(programs)
        self.quantum = quantum
        self.name = "+".join(program.name for program in programs)

    def _build(self, space: AddressSpace) -> None:
        for program in self.programs:
            program.build_into(space)

    def _references(self) -> Iterator[PageRef]:
        streams: List[Optional[Iterator[PageRef]]] = [
            iter(program._references()) for program in self.programs
        ]
        live = len(streams)
        while live:
            for index, stream in enumerate(streams):
                if stream is None:
                    continue
                emitted = 0
                while emitted < self.quantum:
                    try:
                        yield next(stream)
                    except StopIteration:
                        streams[index] = None
                        live -= 1
                        break
                    emitted += 1

    def setup_references(self) -> Iterator[PageRef]:
        """Concatenated (not interleaved) child warm-ups."""
        self.build()
        for program in self.programs:
            yield from program.setup_references()

    def total_references(self) -> int:
        """Sum of the children's estimates."""
        return sum(program.total_references() for program in self.programs
                   if hasattr(program, "total_references"))
