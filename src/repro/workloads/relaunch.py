"""Ariadne-style app-relaunch traffic (PAPERS.md).

A small set of "apps" timeshare the machine in foreground sessions.
Each session *relaunches* the next app — its whole working set faults
back in a burst — and then works in the foreground, looping with writes
over the hot half of its pages while every other app sits cold.  On a
phone this is the app-switch storm Ariadne compresses around: the
background app's pages are the coldest data in the system right up
until the moment they are all demanded at once.

What makes the scenario interesting for the tier controller: the best
static compressed-tier geometry depends on which app is foreground
(they have different footprints and different compressibility), so a
fixed cap is always wrong for part of the run — while relaunch bursts
reward keeping cold-but-compressible pages in memory rather than
letting them drain to the backing store.

The session schedule is seeded and deterministic: same parameters, same
reference stream, bit for bit.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..mem.content import PageContent
from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import repeating_pattern

#: Per-app variation: footprint scale and content compressibility
#: (``unique_bytes`` — larger compresses worse).  Cycled for > 3 apps.
_APP_SHAPES = ((1.0, 384), (1.5, 640), (0.75, 1536))


class AppRelaunchWorkload(Workload):
    """Foreground sessions with full-working-set relaunch bursts.

    Args:
        app_bytes: baseline per-app working set (scaled per app by the
            built-in shape table, so apps differ in footprint).
        apps: number of timesharing apps.
        sessions: foreground sessions (the first launches app 0; each
            later one switches to a different, seeded-randomly chosen
            app and relaunches it).
        hot_fraction: share of the foreground app's pages in active use.
        hot_passes: write passes over the hot set per session.
        write: whether foreground use dirties pages.
        seed: schedule and content seed.
    """

    def __init__(
        self,
        app_bytes: int,
        apps: int = 3,
        sessions: int = 8,
        hot_fraction: float = 0.5,
        hot_passes: int = 4,
        write: bool = True,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if app_bytes <= 0:
            raise ValueError("app_bytes must be positive")
        if apps < 2:
            raise ValueError("relaunch needs at least 2 apps")
        if sessions < 1:
            raise ValueError("sessions must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if hot_passes < 0:
            raise ValueError("hot_passes must be >= 0")
        self.app_bytes = app_bytes
        self.apps = apps
        self.sessions = sessions
        self.hot_fraction = hot_fraction
        self.hot_passes = hot_passes
        self.write = write
        self.seed = seed
        self.name = "relaunch"
        self._segment_ids: List[int] = []
        self._npages: List[int] = []
        for i in range(apps):
            scale, _ = _APP_SHAPES[i % len(_APP_SHAPES)]
            self._npages.append(
                max(1, pages_for_bytes(int(app_bytes * scale), page_size))
            )
        # Seeded schedule: app 0 launches first, then every session
        # switches to a different app (a relaunch, never a no-op).
        rng = random.Random(seed)
        self._schedule: List[int] = [0]
        for _ in range(sessions - 1):
            current = self._schedule[-1]
            choices = [i for i in range(apps) if i != current]
            self._schedule.append(rng.choice(choices))

    def _build(self, space: AddressSpace) -> None:
        for i in range(self.apps):
            _, unique_bytes = _APP_SHAPES[i % len(_APP_SHAPES)]
            npages = self._npages[i]
            segment = space.add_segment(
                f"app{i}",
                npages,
                content_factory=lambda n, u=unique_bytes, a=i: (
                    repeating_pattern(
                        n,
                        seed=self.seed * 1031 + a,
                        unique_bytes=u,
                        page_size=self.page_size,
                    )
                ),
            )
            self._segment_ids.append(segment.segment_id)
            # Foreground writes store one word per pass — the page's
            # compressibility class never changes, so one measurement
            # per page stands for every version.
            for number in range(npages):
                segment.entry(number).content.stable_key = (
                    f"{self.name}:{self.seed}:{i}:{number}"
                )

    def _references(self) -> Iterator[PageRef]:
        for session, app in enumerate(self._schedule):
            segment_id = self._segment_ids[app]
            npages = self._npages[app]
            # Relaunch burst: the whole working set faults back in.
            for number in range(npages):
                yield PageRef(page_id=PageId(segment_id, number))
            # Foreground use: hot subset, with writes.
            hot = max(1, int(npages * self.hot_fraction))
            for cycle in range(self.hot_passes):
                for number in range(hot):
                    page_id = PageId(segment_id, number)
                    if self.write:
                        yield PageRef(
                            page_id=page_id,
                            write=True,
                            mutate=_store_session_word(session, cycle),
                        )
                    else:
                        yield PageRef(page_id=page_id)

    def total_references(self) -> int:
        """Events the run will emit (launch bursts + foreground passes)."""
        total = 0
        for app in self._schedule:
            npages = self._npages[app]
            hot = max(1, int(npages * self.hot_fraction))
            total += npages + hot * self.hot_passes
        return total


def _store_session_word(session: int, cycle: int):
    """Mutation storing a session/cycle tag into the page's first word."""

    def mutate(content: PageContent) -> None:
        content.store_word(0, (session << 8 | cycle) + 1)

    return mutate
