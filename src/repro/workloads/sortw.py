"""The ``sort`` workload: quicksort over ~12 MBytes of text.

Section 5.2 runs quicksort on a large text file in two variants:

* ``sort random`` — fully shuffled input, "so there was minimal
  repetition of strings within an individual 4-Kbyte page"; about 98% of
  pages miss the 4:3 threshold and the compression cache only slows the
  program down (0.91x);
* ``sort partial`` — a minor permutation of the sorted file "with
  substrings (or complete words) often repeated within a page", giving
  ~3:1 on about half the pages and a 1.30x speedup.

This module emits quicksort's *page-level* access pattern for real: a
recursive partition over the heap, where each partition makes a
two-pointer sweep (reads and writes from both ends moving inward), then
recurses on the halves until ranges fit in one page.  The input file is
also read through the file-system buffer cache at start-up, exercising
the three-way memory trade.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import make_dictionary, text_page_clustered, text_page_random


class SortWorkload(Workload):
    """Quicksort page-access trace over a word-filled heap.

    Args:
        data_bytes: text being sorted (the paper's is ~12 MBytes); the
            heap also holds a pointer array of ``pointer_overhead`` times
            the data size.
        partial: True for the ``sort partial`` input (word-clustered
            pages), False for ``sort random``.
        compressible_fraction: fraction of heap pages with within-page
            repetition.  Defaults follow Table 1: 51% for partial
            (49% uncompressible), 2% for random (98% uncompressible).
        compare_seconds: CPU time per page-granularity partition step.
    """

    def __init__(
        self,
        data_bytes: int,
        partial: bool,
        compressible_fraction: float = -1.0,
        pointer_overhead: float = 0.5,
        compare_seconds: float = 0.0,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if data_bytes <= 0:
            raise ValueError(f"data_bytes must be positive: {data_bytes}")
        self.data_bytes = data_bytes
        self.partial = partial
        if compressible_fraction < 0.0:
            compressible_fraction = 0.51 if partial else 0.02
        if not 0.0 <= compressible_fraction <= 1.0:
            raise ValueError(
                f"compressible_fraction out of range: {compressible_fraction}"
            )
        self.compressible_fraction = compressible_fraction
        self.pointer_overhead = pointer_overhead
        self.compare_seconds = compare_seconds
        self.seed = seed
        self.name = "sort_partial" if partial else "sort_random"
        heap_bytes = int(data_bytes * (1.0 + pointer_overhead))
        self.npages = pages_for_bytes(heap_bytes, page_size)
        self._segment_id = -1
        self._dictionary = make_dictionary(seed=seed ^ 0x50F7)

    def _content(self, number: int) -> bytes:
        rng = random.Random((self.seed << 20) ^ number ^ 0x50F75EED)
        if rng.random() < self.compressible_fraction:
            # cluster_words=30 lands the kept-page ratio near the paper's
            # ~30% for both sort variants.
            return text_page_clustered(
                number, self._dictionary, seed=self.seed,
                cluster_words=30, page_size=self.page_size,
            )
        return text_page_random(
            number, self._dictionary, seed=self.seed,
            page_size=self.page_size,
        )

    def _build(self, space: AddressSpace) -> None:
        segment = space.add_segment(
            "sort-heap", self.npages, content_factory=self._content
        )
        self._segment_id = segment.segment_id
        # Swapping words within a page preserves its compressibility
        # class (repetition is a property of the word population).
        for number in range(self.npages):
            segment.entry(number).content.stable_key = (
                f"{self.name}:{self.seed}:{number}"
            )

    def _partition_refs(self, lo: int, hi: int) -> Iterator[PageRef]:
        """Two-pointer partition sweep over pages [lo, hi]."""
        left, right = lo, hi
        while left <= right:
            yield PageRef(
                PageId(self._segment_id, left),
                write=True,
                compute_seconds=self.compare_seconds,
            )
            if right != left:
                yield PageRef(
                    PageId(self._segment_id, right),
                    write=True,
                    compute_seconds=self.compare_seconds,
                )
            left += 1
            right -= 1

    def _references(self) -> Iterator[PageRef]:
        rng = random.Random(self.seed ^ 0x9507)
        # Initial load: sequential read of the whole heap (building it
        # from the input file).
        for number in range(self.npages):
            yield PageRef(
                PageId(self._segment_id, number),
                write=True,
                compute_seconds=self.compare_seconds,
            )
        # Quicksort over page ranges, explicit stack.  Median-of-three
        # pivoting keeps splits near the middle with mild data-dependent
        # jitter, as in production quicksorts.
        stack: List[Tuple[int, int]] = [(0, self.npages - 1)]
        while stack:
            lo, hi = stack.pop()
            if hi <= lo:
                continue
            yield from self._partition_refs(lo, hi)
            middle = (lo + hi) // 2
            jitter = rng.randint(-(hi - lo) // 8, (hi - lo) // 8) if hi - lo >= 8 else 0
            mid = min(hi, max(lo, middle + jitter))
            # Smaller half handled next (classic stack-depth bound; also
            # matches real locality).
            if mid - lo > hi - mid:
                stack.append((lo, max(lo, mid - 1)))
                stack.append((min(hi, mid + 1), hi))
            else:
                stack.append((min(hi, mid + 1), hi))
                stack.append((lo, max(lo, mid - 1)))

    def total_references(self) -> int:
        """Roughly npages * (log2(npages) + 2) events."""
        import math

        return int(self.npages * (math.log2(max(2, self.npages)) + 2))
