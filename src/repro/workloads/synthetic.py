"""Parameterized synthetic workload for tests, ablations, and examples.

Knobs cover the three factors Section 3 says drive the compression
cache's effectiveness: compressibility of pages, locality of references,
and the read/write mix.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import incompressible, repeating_pattern


class SyntheticWorkload(Workload):
    """Zipf-ish reference stream over a configurable address space.

    Args:
        address_space_bytes: total pages touched.
        references: stream length.
        write_fraction: probability a touch writes.
        hot_fraction: fraction of pages forming the hot set.
        hot_probability: probability a reference lands in the hot set.
        compressible_fraction: fraction of pages with compressible
            contents (the rest are random bytes).
        unique_bytes: compressibility knob of compressible pages.
        sequential: emit a linear sweep instead of random draws.
    """

    name = "synthetic"

    def __init__(
        self,
        address_space_bytes: int,
        references: int,
        write_fraction: float = 0.3,
        hot_fraction: float = 0.2,
        hot_probability: float = 0.8,
        compressible_fraction: float = 1.0,
        unique_bytes: int = 640,
        sequential: bool = False,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if address_space_bytes <= 0 or references <= 0:
            raise ValueError("space and reference count must be positive")
        for label, value in (
            ("write_fraction", write_fraction),
            ("hot_fraction", hot_fraction),
            ("hot_probability", hot_probability),
            ("compressible_fraction", compressible_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} out of range: {value}")
        self.address_space_bytes = address_space_bytes
        self.references_count = references
        self.write_fraction = write_fraction
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.compressible_fraction = compressible_fraction
        self.unique_bytes = unique_bytes
        self.sequential = sequential
        self.seed = seed
        self.npages = pages_for_bytes(address_space_bytes, page_size)
        self._segment_id = -1

    def _content(self, number: int) -> bytes:
        rng = random.Random((self.seed << 20) ^ number ^ 0x57E7)
        if rng.random() < self.compressible_fraction:
            return repeating_pattern(
                number, seed=self.seed, unique_bytes=self.unique_bytes,
                page_size=self.page_size,
            )
        return incompressible(number, seed=self.seed,
                              page_size=self.page_size)

    def _build(self, space: AddressSpace) -> None:
        segment = space.add_segment(
            "synthetic", self.npages, content_factory=self._content
        )
        self._segment_id = segment.segment_id
        for number in range(self.npages):
            segment.entry(number).content.stable_key = (
                f"synthetic:{self.seed}:{number}"
            )

    def _references(self) -> Iterator[PageRef]:
        rng = random.Random(self.seed ^ 0x5EEDFACE)
        hot_pages = max(1, int(self.npages * self.hot_fraction))
        for i in range(self.references_count):
            if self.sequential:
                page = i % self.npages
            elif rng.random() < self.hot_probability:
                page = rng.randrange(hot_pages)
            else:
                page = rng.randrange(self.npages)
            write = rng.random() < self.write_fraction
            yield PageRef(PageId(self._segment_id, page), write=write)

    def total_references(self) -> int:
        """Exact stream length."""
        return self.references_count
