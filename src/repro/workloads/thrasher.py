"""The thrasher micro-benchmark (Section 5.1, Figure 3).

"Thrasher cycles linearly through a working set, reading (and optionally
writing) one word of memory on each page each time through the working
set.  The system uses an LRU algorithm for page replacement, so if
thrasher's working set does not fit in memory, then it takes a page fault
on each page access."

Page contents are tuned so LZRW1 achieves the "roughly 4:1" compression
the Figure 3 caption reports.  The write variant stores one word per page
per cycle (the cycle number), exactly as described.
"""

from __future__ import annotations

from typing import Iterator

from ..mem.content import PageContent
from ..mem.page import DEFAULT_PAGE_SIZE, PageId, pages_for_bytes
from ..mem.segment import AddressSpace
from ..sim.engine import PageRef
from .base import Workload
from .contentgen import repeating_pattern


class Thrasher(Workload):
    """Linear cyclic sweep over a working set.

    Args:
        working_set_bytes: total address space touched.
        cycles: full passes over the working set.
        write: modify one word per page per pass (the ``rw`` variant).
        unique_bytes: compressibility knob of the page contents; 640
            yields the paper's ~4:1.
        seed: content randomization seed.
    """

    def __init__(
        self,
        working_set_bytes: int,
        cycles: int = 4,
        write: bool = True,
        unique_bytes: int = 640,
        seed: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(page_size=page_size)
        if working_set_bytes <= 0 or cycles <= 0:
            raise ValueError("working set and cycles must be positive")
        self.working_set_bytes = working_set_bytes
        self.cycles = cycles
        self.write = write
        self.unique_bytes = unique_bytes
        self.seed = seed
        self.npages = pages_for_bytes(working_set_bytes, page_size)
        self.name = f"thrasher_{'rw' if write else 'ro'}"
        self._segment_id: int = -1

    def _build(self, space: AddressSpace) -> None:
        segment = space.add_segment(
            "thrasher",
            self.npages,
            content_factory=lambda n: repeating_pattern(
                n,
                seed=self.seed,
                unique_bytes=self.unique_bytes,
                page_size=self.page_size,
            ),
        )
        self._segment_id = segment.segment_id
        # One-word writes per cycle don't change the compressibility
        # class, so a single measurement per page stands for all versions.
        for number in range(self.npages):
            segment.entry(number).content.stable_key = (
                f"{self.name}:{self.seed}:{number}"
            )

    def _references(self) -> Iterator[PageRef]:
        for cycle in range(self.cycles):
            for number in range(self.npages):
                page_id = PageId(self._segment_id, number)
                if self.write:
                    yield PageRef(
                        page_id=page_id,
                        write=True,
                        mutate=_store_cycle_word(cycle),
                    )
                else:
                    yield PageRef(page_id=page_id)

    def total_references(self) -> int:
        """Accesses the run will perform (pages x cycles)."""
        return self.npages * self.cycles


def _store_cycle_word(cycle: int):
    """Mutation storing the cycle number into the page's first word."""

    def mutate(content: PageContent) -> None:
        content.store_word(0, cycle + 1)

    return mutate
