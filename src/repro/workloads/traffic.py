"""Deterministic service traffic: Zipf keys, tenant mixes, load ramps.

The `repro serve-bench` driver replays a stream of get/put/delete
operations against :class:`repro.service.CacheService`.  Everything
here is a pure function of a :class:`TrafficSpec` — one seeded
``random.Random`` drives key choice, tenant choice, and op choice, so
the stream (and therefore every per-tenant ledger downstream of it) is
bit-reproducible across runs, machines, and shard counts.

Design notes:

* **Zipf popularity** — key ranks are drawn from a truncated Zipf
  distribution (weight ``1 / rank^s``) via cumulative weights and
  ``bisect``; ``s≈1`` gives the classic heavy tail where a few pages
  absorb most references, the regime where a compression cache (and
  request batching) earns its keep.  Rank → key goes through
  :func:`repro.service.config.page_key`, so hot ranks scatter uniformly
  over virtual slots instead of clustering on one shard.
* **Versioned payloads** — each PUT bumps the key's version, and the
  page content is a function of ``(tenant, rank, version mod 4)``.
  Overwrites really change bytes (the store must recompress), but the
  bounded version cycle keeps the content universe finite so the
  process-wide kernel-result cache and the contentgen memos stay
  effective across a long run.
* **Diurnal ramp** — :func:`diurnal_multiplier` shapes *offered load*
  (a sinusoid over the run, as in day/night traffic).  It is applied
  only by the paced server mode; the throughput bench replays flat-out,
  so the op stream itself never depends on wall-clock time.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..mem.page import DEFAULT_PAGE_SIZE
from ..service.config import page_key
from . import contentgen

#: op verbs, matching repro.service.protocol operations one-to-one.
GET, PUT, DELETE = "get", "put", "delete"


@dataclass(frozen=True)
class TenantTraffic:
    """One tenant's share of the offered load."""

    name: str
    #: relative traffic weight (any positive number).
    weight: float = 1.0
    #: distinct keys in this tenant's working set.
    keys: int = 4096

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name}: weight must be > 0")
        if self.keys < 1:
            raise ValueError(f"tenant {self.name}: keys must be >= 1")


@dataclass(frozen=True)
class TrafficSpec:
    """Everything that determines the op stream (and nothing else)."""

    ops: int = 10000
    seed: int = 1234
    tenants: Tuple[TenantTraffic, ...] = (TenantTraffic("default"),)
    #: Zipf skew: 0 is uniform, ~1 the classic heavy tail.
    zipf_s: float = 1.1
    #: fraction of operations that are GETs.
    read_fraction: float = 0.7
    #: fraction of *non-read* operations that are DELETEs.
    delete_fraction: float = 0.05
    page_size: int = DEFAULT_PAGE_SIZE
    #: peak-to-mean amplitude of the diurnal ramp (0 disables).
    diurnal_amplitude: float = 0.0
    #: full sine periods over the run.
    diurnal_periods: float = 1.0

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise ValueError(f"ops must be >= 1: {self.ops}")
        if not self.tenants:
            raise ValueError("at least one tenant is required")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.delete_fraction <= 1.0:
            raise ValueError("delete_fraction must be in [0, 1]")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    def describe(self) -> Dict[str, object]:
        """JSON-native form for BENCH_service.json."""
        return {
            "ops": self.ops,
            "seed": self.seed,
            "tenants": [
                {"name": t.name, "weight": t.weight, "keys": t.keys}
                for t in self.tenants
            ],
            "zipf_s": self.zipf_s,
            "read_fraction": self.read_fraction,
            "delete_fraction": self.delete_fraction,
            "page_size": self.page_size,
            "diurnal_amplitude": self.diurnal_amplitude,
            "diurnal_periods": self.diurnal_periods,
        }


@dataclass(frozen=True)
class TrafficOp:
    """One operation; the payload is generated lazily (PUTs only)."""

    op: str
    tenant: str
    key: int
    #: content version (PUTs); bumped on every overwrite of the key.
    version: int = 0
    #: (tenant, rank) provenance, kept for payload derivation.
    rank: int = 0

    def payload(self, spec: TrafficSpec) -> Optional[bytes]:
        """The page bytes for a PUT (``None`` for GET/DELETE)."""
        if self.op != PUT:
            return None
        return page_payload(
            self.tenant, self.rank, self.version,
            spec.seed, spec.page_size,
        )


class ZipfSampler:
    """Truncated Zipf(s) over ranks ``0..n-1`` via cumulative weights.

    ``sample`` costs one uniform draw and one ``bisect`` — O(log n) —
    and depends only on the supplied ``random.Random``, keeping the op
    stream reproducible.
    """

    __slots__ = ("_cumulative", "_total")

    def __init__(self, n: int, s: float):
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        return bisect_right(self._cumulative, rng.random() * self._total)


#: page content families, chosen per key; mirrors the simulator's mix
#: of text, index, table, and incompressible pages.
_CONTENT_KINDS = (
    "pattern", "dp_band", "index", "cache_table", "incompressible",
)


def page_payload(tenant: str, rank: int, version: int, seed: int,
                 page_size: int = DEFAULT_PAGE_SIZE) -> bytes:
    """The page stored for ``(tenant, rank)`` at a content version.

    A pure function: replaying the same spec regenerates identical
    bytes.  The version is folded mod 4 so overwrite cycles revisit
    content the generator memos (and the shared kernel-result cache)
    have already paid for.
    """
    ident = page_key(f"{tenant}:{rank}")
    kind = _CONTENT_KINDS[ident % len(_CONTENT_KINDS)]
    page_number = (ident >> 3) ^ ((version & 3) << 40)
    if kind == "pattern":
        return contentgen.repeating_pattern(
            page_number, seed=seed, page_size=page_size
        )
    if kind == "dp_band":
        return contentgen.dp_band_values(
            page_number, seed=seed, page_size=page_size
        )
    if kind == "index":
        return contentgen.index_page(
            page_number, seed=seed, page_size=page_size
        )
    if kind == "cache_table":
        return contentgen.cache_table_page(
            page_number, seed=seed, page_size=page_size
        )
    return contentgen.incompressible(
        page_number, seed=seed, page_size=page_size
    )


def generate_ops(spec: TrafficSpec) -> Iterator[TrafficOp]:
    """The canonical op stream: one seeded stream, in offered order.

    GETs against never-written keys are legitimate cold misses.  PUT
    versions count per ``(tenant, rank)``, so an overwrite always
    changes content relative to what is resident.
    """
    rng = random.Random(spec.seed)
    tenant_cum = list(accumulate(t.weight for t in spec.tenants))
    tenant_total = tenant_cum[-1]
    samplers = [ZipfSampler(t.keys, spec.zipf_s) for t in spec.tenants]
    versions: Dict[Tuple[int, int], int] = {}
    for _ in range(spec.ops):
        tindex = bisect_right(tenant_cum, rng.random() * tenant_total)
        tenant = spec.tenants[tindex]
        rank = samplers[tindex].sample(rng)
        key = page_key(f"{tenant.name}:{rank}")
        draw = rng.random()
        if draw < spec.read_fraction:
            yield TrafficOp(GET, tenant.name, key, rank=rank)
        elif rng.random() < spec.delete_fraction:
            yield TrafficOp(DELETE, tenant.name, key, rank=rank)
        else:
            version = versions.get((tindex, rank), -1) + 1
            versions[(tindex, rank)] = version
            yield TrafficOp(
                PUT, tenant.name, key, version=version, rank=rank
            )


def partition_by_vslot(
    ops: Sequence[TrafficOp],
    vslots: int,
    clients: int,
) -> List[List[TrafficOp]]:
    """Split the stream into per-client queues along vslot boundaries.

    All operations on one virtual slot land in the same queue, in
    stream order.  Each client replays its queue sequentially (awaiting
    each op), so the per-slot op order the shards observe equals the
    stream order for *any* shard count and any concurrency — the
    client-side half of the determinism contract.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1: {clients}")
    queues: List[List[TrafficOp]] = [[] for _ in range(clients)]
    for op in ops:
        queues[(op.key % vslots) % clients].append(op)
    return queues


def diurnal_multiplier(progress: float, amplitude: float,
                       periods: float = 1.0) -> float:
    """Offered-load multiplier at a point in the run (``progress`` in
    [0, 1]).  Mean 1.0; peak ``1 + amplitude``; trough ``1 - amplitude``.
    """
    if amplitude <= 0:
        return 1.0
    return 1.0 + amplitude * math.sin(2.0 * math.pi * periods * progress)


def tenant_weights_from_spec(spec: str) -> Dict[str, float]:
    """Traffic weights from the CLI grammar ``name[=quota][:weight]``.

    The quota part belongs to :func:`repro.service.config.tenants_from_spec`;
    this companion extracts the weights (default 1.0).
    """
    weights: Dict[str, float] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, weight = item.partition(":")
        name = name.split("=", 1)[0]
        weights[name] = float(weight) if weight else 1.0
    return weights
