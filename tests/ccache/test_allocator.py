"""Three-way allocator: age comparison, biases, victim selection."""

from typing import Optional

import pytest

from repro.ccache.allocator import (
    AllocationBiases,
    ThreeWayAllocator,
    TieredAllocator,
)
from repro.mem.frames import FrameOwner, FramePool, OutOfFramesError


class FakePool:
    """A MemoryPool stub holding frames it can give back."""

    def __init__(self, frames: FramePool, owner: FrameOwner, age=None):
        self.frames = frames
        self.owner = owner
        self.age = age
        self.held = []
        self.shrinks = 0
        self.refuse = False

    def grab(self, n):
        for _ in range(n):
            self.held.append(self.frames.allocate(self.owner))

    def coldest_age(self, now: float) -> Optional[float]:
        if not self.held:
            return None
        return self.age

    def shrink_one(self) -> Optional[float]:
        if self.refuse or not self.held:
            return None
        self.frames.release(self.held.pop())
        self.shrinks += 1
        return 0.0


def make_world(nframes=4, biases=None):
    frames = FramePool(nframes)
    allocator = ThreeWayAllocator(frames, biases=biases)
    vm = FakePool(frames, FrameOwner.VM, age=10.0)
    cc = FakePool(frames, FrameOwner.COMPRESSION, age=10.0)
    fs = FakePool(frames, FrameOwner.FILE_CACHE, age=10.0)
    allocator.register(FrameOwner.VM, vm)
    allocator.register(FrameOwner.COMPRESSION, cc)
    allocator.register(FrameOwner.FILE_CACHE, fs)
    return frames, allocator, vm, cc, fs


class TestFreePath:
    def test_free_frame_allocated_directly(self):
        frames, allocator, vm, cc, fs = make_world()
        frame = allocator.obtain_frame(FrameOwner.VM)
        assert frames.owner_of(frame) == FrameOwner.VM
        assert vm.shrinks == cc.shrinks == fs.shrinks == 0


class TestVictimSelection:
    def test_oldest_pool_loses(self):
        frames, allocator, vm, cc, fs = make_world()
        vm.grab(2)
        cc.grab(1)
        fs.grab(1)
        vm.age, cc.age, fs.age = 100.0, 5.0, 5.0
        allocator = ThreeWayAllocator(
            frames,
            biases=AllocationBiases(0, 0, 0, 1.0, 1.0, 1.0),
        )
        allocator.register(FrameOwner.VM, vm)
        allocator.register(FrameOwner.COMPRESSION, cc)
        allocator.register(FrameOwner.FILE_CACHE, fs)
        allocator.obtain_frame(FrameOwner.COMPRESSION)
        assert vm.shrinks == 1

    def test_biases_order_default_preference(self):
        """Equal raw ages: file cache evicted before VM before cache."""
        frames, allocator, vm, cc, fs = make_world()
        vm.grab(2)
        cc.grab(1)
        fs.grab(1)
        allocator.obtain_frame(FrameOwner.VM)
        assert fs.shrinks == 1
        assert vm.shrinks == 0 and cc.shrinks == 0

    def test_bias_gap_protects_compressed_pages(self):
        """Compressed pages survive while raw-older by less than the gap.

        Default weights age VM pages several times faster than compressed
        pages: a compressed page substantially older than the LRU VM page
        is still retained (the paper's 'favor compressed pages over
        uncompressed pages')."""
        frames, allocator, vm, cc, fs = make_world()
        vm.grab(2)
        cc.grab(2)
        vm.age, cc.age = 10.0, 30.0  # cc older, but 30 < 10 * vm_weight
        allocator.obtain_frame(FrameOwner.VM)
        assert vm.shrinks == 1 and cc.shrinks == 0

    def test_bias_gap_is_finite(self):
        """Far-older compressed pages are still reclaimed eventually."""
        frames, allocator, vm, cc, fs = make_world()
        vm.grab(2)
        cc.grab(2)
        vm.age, cc.age = 10.0, 70.0  # 70 > 10 * vm_weight (6)
        allocator.obtain_frame(FrameOwner.VM)
        assert cc.shrinks == 1 and vm.shrinks == 0

    def test_zero_bias_degenerates_to_pure_lru(self):
        frames = FramePool(4)
        allocator = ThreeWayAllocator(
            frames,
            biases=AllocationBiases(0, 0, 0, 1.0, 1.0, 1.0),
        )
        vm = FakePool(frames, FrameOwner.VM, age=1.0)
        cc = FakePool(frames, FrameOwner.COMPRESSION, age=2.0)
        allocator.register(FrameOwner.VM, vm)
        allocator.register(FrameOwner.COMPRESSION, cc)
        vm.grab(2)
        cc.grab(2)
        allocator.obtain_frame(FrameOwner.VM)
        assert cc.shrinks == 1

    def test_empty_pools_skipped(self):
        frames, allocator, vm, cc, fs = make_world()
        vm.grab(4)  # others empty
        allocator.obtain_frame(FrameOwner.FILE_CACHE)
        assert vm.shrinks == 1

    def test_victims_counted(self):
        frames, allocator, vm, cc, fs = make_world()
        fs.grab(4)
        allocator.obtain_frame(FrameOwner.VM)
        assert allocator.counters.snapshot()["fs"] == 1


class TestRefusal:
    def test_refusing_pool_falls_through(self):
        frames, allocator, vm, cc, fs = make_world()
        fs.grab(2)
        vm.grab(2)
        fs.refuse = True  # would be preferred victim but refuses
        allocator.obtain_frame(FrameOwner.VM)
        assert vm.shrinks == 1

    def test_all_refuse_raises(self):
        frames, allocator, vm, cc, fs = make_world()
        vm.grab(4)
        vm.refuse = True
        with pytest.raises(OutOfFramesError):
            allocator.obtain_frame(FrameOwner.VM)

    def test_nothing_registered_raises(self):
        frames = FramePool(1)
        allocator = ThreeWayAllocator(frames)
        frames.allocate(FrameOwner.VM)  # exhaust directly
        with pytest.raises(OutOfFramesError):
            allocator.obtain_frame(FrameOwner.VM)


class TestBiases:
    def test_for_owner(self):
        biases = AllocationBiases(30.0, 10.0, 0.0)
        assert biases.for_owner(FrameOwner.FILE_CACHE) == 30.0
        assert biases.for_owner(FrameOwner.VM) == 10.0
        assert biases.for_owner(FrameOwner.COMPRESSION) == 0.0


class TestBiasValidation:
    """Nonsense age terms fail at construction, not at victim time."""

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("nan"),
                                        float("inf")])
    def test_bad_weights_rejected(self, weight):
        with pytest.raises(ValueError, match="weight"):
            AllocationBiases(vm_weight=weight)
        with pytest.raises(ValueError, match="weight"):
            AllocationBiases(file_cache_weight=weight)
        with pytest.raises(ValueError, match="weight"):
            AllocationBiases(ccache_weight=weight)

    @pytest.mark.parametrize("bias", [-0.001, float("nan"), float("inf")])
    def test_bad_biases_rejected(self, bias):
        with pytest.raises(ValueError, match="bias"):
            AllocationBiases(vm_bias_s=bias)

    def test_error_names_the_offending_pool(self):
        with pytest.raises(ValueError, match="file_cache"):
            AllocationBiases(file_cache_weight=-2.0)

    def test_zero_biases_valid(self):
        AllocationBiases(0.0, 0.0, 0.0)  # pure weighted LRU is fine


class TestRegisterPool:
    """Extra pools (the N-tier path) join with explicit age terms."""

    def test_explicit_terms_pool_competes(self):
        frames = FramePool(4)
        allocator = ThreeWayAllocator(frames)
        vm = FakePool(frames, FrameOwner.VM, age=10.0)
        l2 = FakePool(frames, FrameOwner.COMPRESSION, age=10.0)
        allocator.register(FrameOwner.VM, vm)
        # A huge weight makes the extra pool the preferred victim even
        # against the VM pool's default weight of 6.
        allocator.register_pool("cc:l2", l2, weight=100.0, bias_s=0.0)
        vm.grab(2)
        l2.grab(2)
        allocator.obtain_frame(FrameOwner.VM)
        assert l2.shrinks == 1 and vm.shrinks == 0
        assert allocator.counters.snapshot()["cc:l2"] == 1

    def test_explicit_terms_validated_at_registration(self):
        allocator = ThreeWayAllocator(FramePool(2))
        with pytest.raises(ValueError, match="weight"):
            allocator.register_pool("cc:l2", None, weight=-1.0)
        with pytest.raises(ValueError, match="bias"):
            allocator.register_pool("cc:l2", None, weight=1.0,
                                    bias_s=float("nan"))

    def test_policyless_registration_needs_terms(self):
        allocator = TieredAllocator(FramePool(2), policy=None)
        with pytest.raises(ValueError, match="trading policy"):
            allocator.register_pool("cc:l2", None)
