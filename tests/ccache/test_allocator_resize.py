"""Dynamic pool resizing: spill safety, conservation, bad inputs.

``resize_pool`` is the mechanism the control plane leans on, so its edge
cases get their own suite: shrinking below a tier's live footprint must
spill pages through the demotion path (never drop them), arbitrary
resize sequences must conserve physical frames, and unregistered or
nonsensical requests must fail loudly instead of corrupting state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccache.allocator import TieredAllocator
from repro.mem.frames import FrameOwner, FramePool
from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.tiers.spec import parse_tier_specs
from repro.workloads import Thrasher


def two_tier_machine(scale=0.08, paranoid=False, cycles=2):
    memory = mbytes(6 * scale)
    workload = Thrasher(int(memory * 2), cycles=cycles, write=True)
    config = MachineConfig(
        memory_bytes=memory,
        tiers=parse_tier_specs("two-tier"),
        paranoid=paranoid,
    )
    return Machine(config, workload.build()), workload


class RecordingPool:
    """Minimal capped MemoryPool double for the failure-mode tests."""

    def __init__(self, nframes=10, max_frames=None, refuse_after=None):
        self.nframes = nframes
        self.max_frames = max_frames
        self.refuse_after = refuse_after
        self.shrinks = 0

    def coldest_age(self, now):
        return 1.0 if self.nframes else None

    def shrink_one(self):
        if self.refuse_after is not None and self.shrinks >= self.refuse_after:
            return None
        if self.nframes == 0:
            return None
        self.nframes -= 1
        self.shrinks += 1
        return 0.0


class UncappablePool:
    """A pool with no frame-cap attributes at all."""

    def coldest_age(self, now):
        return None

    def shrink_one(self):
        return None


def make_allocator(**pool_kwargs):
    allocator = TieredAllocator(FramePool(64))
    pool = RecordingPool(**pool_kwargs)
    allocator.register_pool("cc:test", pool, weight=1.0, bias_s=0.0)
    return allocator, pool


class TestSpillSafety:
    def test_shrink_below_live_frames_spills_not_drops(self):
        """Shrink a populated L1 to a sliver, then fault everything back
        with paranoid content verification on: any page the resize had
        dropped instead of spilling would surface as a corruption."""
        machine, workload = two_tier_machine(paranoid=True)
        engine = SimulationEngine(machine)
        engine.run(workload.references())
        l1 = machine.chain.warmest
        live = l1.cache.nframes
        assert live > 8  # the thrasher must have filled the capped tier
        demoted_before = l1.sink.demoted_pages
        released = machine.allocator.resize_pool(FrameOwner.COMPRESSION, 8)
        assert l1.cache.max_frames == 8
        assert released > 0
        assert l1.cache.nframes <= live - released
        # The evicted pages went somewhere real: through the demotion
        # sink into L2/the store, not into the void.
        assert l1.sink.demoted_pages > demoted_before
        # Re-touching the whole space decompresses every page with the
        # paranoid checker comparing contents; survival == no data loss.
        engine.run(workload.references())

    def test_released_frames_return_to_the_free_pool(self):
        machine, workload = two_tier_machine()
        SimulationEngine(machine).run(workload.references())
        free_before = machine.frames.free_frames
        released = machine.allocator.resize_pool(FrameOwner.COMPRESSION, 8)
        assert released > 0
        # Some of the released frames are immediately re-spent holding
        # the spilled pages in L2, but the shrink must still come out
        # ahead: the free pool grows and nothing leaks.
        assert machine.frames.free_frames > free_before
        assert sum(machine.frames.split().values()) \
            == machine.frames.total_frames

    def test_lifting_the_cap_releases_nothing(self):
        machine, workload = two_tier_machine()
        SimulationEngine(machine).run(workload.references())
        live = machine.chain.warmest.cache.nframes
        released = machine.allocator.resize_pool(FrameOwner.COMPRESSION, None)
        assert released == 0
        assert machine.chain.warmest.cache.max_frames is None
        assert machine.chain.warmest.cache.nframes == live

    @settings(max_examples=10, deadline=None)
    @given(caps=st.lists(
        st.one_of(st.integers(min_value=1, max_value=64), st.none()),
        min_size=1, max_size=6,
    ))
    def test_frames_conserved_across_arbitrary_resizes(self, caps):
        """Every frame is always exactly one of: free, or allocated to
        an owner — no resize sequence may leak or mint frames."""
        machine, workload = two_tier_machine(scale=0.05, cycles=1)
        SimulationEngine(machine).run(workload.references())
        frames = machine.frames
        for cap in caps:
            machine.allocator.resize_pool(FrameOwner.COMPRESSION, cap)
            split = frames.split()  # includes the "free" bucket
            assert sum(split.values()) == frames.total_frames
            assert split["free"] == frames.free_frames
            if cap is not None:
                assert machine.chain.warmest.cache.max_frames == cap


class TestFailureModes:
    def test_resize_unregistered_pool_raises(self):
        allocator, _ = make_allocator()
        with pytest.raises(KeyError, match="unregistered pool 'cc:ghost'"):
            allocator.resize_pool("cc:ghost", 4)

    def test_retune_unregistered_pool_raises(self):
        allocator, _ = make_allocator()
        with pytest.raises(KeyError, match="unregistered pool 'cc:ghost'"):
            allocator.retune("cc:ghost", weight=2.0)

    def test_resize_uncappable_pool_raises(self):
        allocator = TieredAllocator(FramePool(8))
        allocator.register_pool("flat", UncappablePool(),
                                weight=1.0, bias_s=0.0)
        with pytest.raises(TypeError, match="does not support a frame cap"):
            allocator.resize_pool("flat", 4)

    def test_resize_to_nonpositive_cap_raises(self):
        allocator, pool = make_allocator()
        with pytest.raises(ValueError, match="max_frames"):
            allocator.resize_pool("cc:test", 0)
        assert pool.max_frames is None  # state untouched on failure

    def test_retune_validates_terms(self):
        allocator, _ = make_allocator()
        with pytest.raises(ValueError, match="weight"):
            allocator.retune("cc:test", weight=0.0)
        with pytest.raises(ValueError, match="bias"):
            allocator.retune("cc:test", bias_s=-1.0)

    def test_retune_none_terms_inherit_current(self):
        allocator, _ = make_allocator()
        allocator.retune("cc:test", weight=3.0, bias_s=0.5)
        assert allocator.retune("cc:test", bias_s=0.25) == (3.0, 0.25)
        assert allocator.retune("cc:test") == (3.0, 0.25)


class TestShrinkMechanics:
    def test_shrink_stops_when_the_pool_refuses(self):
        """A pool may renege (e.g. unsealed tail frame): the cap stays,
        growth is bounded, and the return value reports what actually
        came back."""
        allocator, pool = make_allocator(nframes=10, refuse_after=3)
        released = allocator.resize_pool("cc:test", 2)
        assert released == 3
        assert pool.nframes == 7  # still over cap, legitimately
        assert pool.max_frames == 2

    def test_shrink_releases_exactly_down_to_the_cap(self):
        allocator, pool = make_allocator(nframes=10)
        released = allocator.resize_pool("cc:test", 4)
        assert released == 6
        assert pool.nframes == 4

    def test_growing_the_cap_releases_nothing(self):
        allocator, pool = make_allocator(nframes=5, max_frames=8)
        assert allocator.resize_pool("cc:test", 16) == 0
        assert pool.nframes == 5
        assert pool.max_frames == 16
