"""Boundary geometry in the circular buffer."""

import pytest

from repro.ccache.circular import CompressionCache
from repro.ccache.header import COMPRESSED_PAGE_HEADER_BYTES
from repro.mem.frames import FramePool
from repro.mem.page import PageId
from repro.sim.ledger import Ledger
from repro.storage.blockfs import BlockFileSystem
from repro.storage.disk import DiskModel
from repro.storage.fragstore import FragmentStore


def make_cache(nframes=16):
    frames = FramePool(nframes)
    cache = CompressionCache(
        frames,
        FragmentStore(BlockFileSystem(DiskModel.rz57())),
        Ledger(),
    )
    return cache, frames


def pid(n):
    return PageId(0, n)


class TestExactBoundaries:
    def test_entry_ending_exactly_at_frame_boundary(self):
        cache, _ = make_cache()
        size = 4096 - COMPRESSED_PAGE_HEADER_BYTES
        cache.insert(pid(0), b"x" * size, dirty=True, now=0.0)
        assert cache.nframes == 1
        # The next entry begins exactly at the boundary: a new frame.
        cache.insert(pid(1), b"y" * 10, dirty=True, now=0.0)
        assert cache.nframes == 2
        assert cache.fetch(pid(0))[0] == b"x" * size
        assert cache.fetch(pid(1))[0] == b"y" * 10

    def test_entry_spanning_three_frames(self):
        cache, _ = make_cache()
        cache.insert(pid(0), b"a" * 2000, dirty=True, now=0.0)
        big = 4096 + 3000  # spans the rest of frame 0, all of 1, into 2
        cache.insert(pid(1), b"b" * big, dirty=True, now=0.0)
        assert cache.nframes == 3
        payload, _ = cache.fetch(pid(1))
        assert payload == b"b" * big
        # The middle frame empties and is released; frame 0 still holds
        # p0 and the last frame is the tail (kept mapped for appends).
        assert cache.nframes == 2

    def test_single_byte_entries_pack_tightly(self):
        cache, _ = make_cache()
        per_frame = 4096 // (1 + COMPRESSED_PAGE_HEADER_BYTES)
        for n in range(per_frame):
            cache.insert(pid(n), b"z", dirty=True, now=0.0)
        assert cache.nframes == 1

    def test_interleaved_removal_keeps_frame_refcounts(self):
        cache, frames = make_cache()
        # Entries alternating across a boundary; removing one of a
        # spanning pair must not free the shared frame early.
        cache.insert(pid(0), b"a" * 3000, dirty=True, now=0.0)
        cache.insert(pid(1), b"b" * 3000, dirty=True, now=0.0)  # spans 0-1
        cache.insert(pid(2), b"c" * 3000, dirty=True, now=0.0)  # spans 1-2
        cache.fetch(pid(1))
        # Frame 1 still hosts part of p2: must remain mapped.
        assert cache.nframes >= 2
        assert cache.fetch(pid(2))[0] == b"c" * 3000

    def test_shrink_with_single_spanning_entry(self):
        cache, _ = make_cache()
        cache.insert(pid(0), b"s" * 6000, dirty=True, now=0.0)  # 2 frames
        cache.insert(pid(1), b"t" * 100, dirty=True, now=1.0)
        released = cache.shrink_one()
        assert released is not None
        # The spanning entry was written out and both its frames are
        # reclaimable; the payload survives on the backing store.
        assert cache.fragstore.contains(pid(0))


class TestPathologicalPressure:
    def test_two_frame_machine_makes_progress(self):
        """The smallest legal machine still completes a thrash."""
        from repro.mem.page import mbytes
        from repro.sim.engine import SimulationEngine
        from repro.sim.machine import Machine, MachineConfig
        from repro.workloads import Thrasher

        workload = Thrasher(40 * 4096, cycles=2, write=True)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.07),
                          min_resident_frames=2),
            workload.build(),
        )
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["accesses"] == 80

    def test_fixed_cache_of_two_frames_rotates(self):
        cache, _ = make_cache()
        cache.max_frames = 2
        for n in range(20):
            cache.insert(pid(n), bytes([n]) * 900, dirty=True,
                         now=float(n))
        assert cache.nframes <= 2
        # Rotated-out pages reached the backing store.
        assert cache.fragstore.counters.pages_put > 0

    def test_fixed_cache_of_one_frame_cannot_rotate(self):
        """A one-frame cache has only its tail frame, which can never be
        evicted — growth past it must fail loudly, not corrupt."""
        cache, _ = make_cache()
        cache.max_frames = 1
        with pytest.raises(RuntimeError, match="fixed-size"):
            for n in range(20):
                cache.insert(pid(n), bytes([n]) * 900, dirty=True,
                             now=float(n))
