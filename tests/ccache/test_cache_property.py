"""Property-based consistency: random op sequences vs ground truth.

The cache keeps incremental dirty/frame counters for O(1) cleaner
scheduling; this test hammers the public API with random operation
sequences (including reentrant-free paths) and re-derives every counter
from first principles after each step.
"""

from hypothesis import given, settings, strategies as st

from repro.ccache.circular import CompressionCache
from repro.mem.frames import FramePool
from repro.mem.page import PageId
from repro.sim.ledger import Ledger
from repro.storage.blockfs import BlockFileSystem
from repro.storage.disk import DiskModel
from repro.storage.fragstore import FragmentStore


def _ops():
    return st.lists(
        st.one_of(
            st.tuples(
                st.just("insert"),
                st.integers(0, 20),                 # page number
                st.integers(1, 4000),               # payload size
                st.booleans(),                      # dirty
            ),
            st.tuples(st.just("fetch"), st.integers(0, 20), st.booleans()),
            st.tuples(st.just("drop"), st.integers(0, 20)),
            st.tuples(st.just("clean"), st.integers(0, 5)),
            st.tuples(st.just("shrink"), st.integers(0, 0)),
        ),
        min_size=1,
        max_size=60,
    )


def _check_ground_truth(cache):
    true_dirty_entries = sum(
        1 for e in cache._entries.values() if e.header.dirty
    )
    assert cache._dirty_entries == true_dirty_entries
    for index, slot in cache._frames.items():
        true_pages = {
            p for p, e in cache._entries.items()
            if index in cache._overlapped(e)
        }
        assert set(slot.pages) == true_pages
        # shrink_one relies on registration order being ascending offset.
        offsets = [cache._entries[p].offset for p in slot.pages]
        assert offsets == sorted(offsets)
        true_dirty = sum(
            1 for p in true_pages if cache._entries[p].header.dirty
        )
        assert slot.dirty_pages == true_dirty
    assert cache._dirty_frames == sum(
        1 for s in cache._frames.values() if s.dirty_pages > 0
    )
    # Payload integrity: what's in the cache is what was inserted.
    for page_id, entry in cache._entries.items():
        assert entry.header.compressed_size == len(entry.payload)


@settings(max_examples=80, deadline=None)
@given(ops=_ops())
def test_random_op_sequences_stay_consistent(ops):
    frames = FramePool(64)
    fs = BlockFileSystem(DiskModel.rz57())
    fragstore = FragmentStore(fs)
    cache = CompressionCache(frames, fragstore, Ledger())
    now = 0.0
    for op in ops:
        now += 1.0
        kind = op[0]
        if kind == "insert":
            _, number, size, dirty = op
            page_id = PageId(0, number)
            if page_id in cache:
                continue
            cache.insert(
                page_id, b"p" * size, dirty=dirty, now=now,
                on_backing_store=not dirty,
            )
        elif kind == "fetch":
            _, number, remove = op
            page_id = PageId(0, number)
            if page_id in cache:
                cache.fetch(page_id, remove=remove)
        elif kind == "drop":
            page_id = PageId(0, op[1])
            if page_id in cache:
                cache.drop(page_id)
        elif kind == "clean":
            cache.clean_pages(op[1])
        elif kind == "shrink":
            cache.shrink_one()
        _check_ground_truth(cache)
    # Frame ownership must reconcile with the pool.
    assert frames.owned_by(
        __import__("repro.mem.frames", fromlist=["FrameOwner"]).FrameOwner.COMPRESSION
    ) == cache.nframes


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 4050), min_size=1, max_size=30),
)
def test_insert_fetch_everything_releases_all_frames(sizes):
    frames = FramePool(64)
    fs = BlockFileSystem(DiskModel.rz57())
    cache = CompressionCache(frames, FragmentStore(fs), Ledger())
    for n, size in enumerate(sizes):
        cache.insert(PageId(0, n), b"q" * size, dirty=False, now=float(n),
                     on_backing_store=True)
    for n, size in enumerate(sizes):
        payload, _ = cache.fetch(PageId(0, n))
        assert payload == b"q" * size
    assert len(cache) == 0
    assert cache.nframes <= 1  # at most the tail frame
