"""The circular-buffer compression cache."""

import pytest

from repro.ccache.circular import CompressionCache
from repro.ccache.header import SlotState
from repro.mem.frames import FrameOwner, FramePool
from repro.mem.page import PageId
from repro.sim.ledger import Ledger
from repro.storage.blockfs import BlockFileSystem
from repro.storage.disk import DiskModel
from repro.storage.fragstore import FragmentStore


def make_cache(nframes=8, **kwargs):
    frames = FramePool(nframes)
    fs = BlockFileSystem(DiskModel.rz57())
    fragstore = FragmentStore(fs)
    ledger = Ledger()
    cache = CompressionCache(frames, fragstore, ledger, **kwargs)
    return cache, frames, fragstore, ledger


def pid(n):
    return PageId(0, n)


class TestInsertFetch:
    def test_round_trip(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"hello" * 100, dirty=True, now=0.0)
        payload, dirty = cache.fetch(pid(1))
        assert payload == b"hello" * 100
        assert dirty
        assert pid(1) not in cache

    def test_fetch_keep(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"x" * 64, dirty=False, now=0.0,
                     on_backing_store=True)
        payload, _ = cache.fetch(pid(1), remove=False)
        assert payload == b"x" * 64
        assert pid(1) in cache

    def test_duplicate_insert_rejected(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"a" * 10, dirty=True, now=0.0)
        with pytest.raises(ValueError):
            cache.insert(pid(1), b"b" * 10, dirty=True, now=0.0)

    def test_empty_payload_rejected(self):
        cache, _, _, _ = make_cache()
        with pytest.raises(ValueError):
            cache.insert(pid(1), b"", dirty=True, now=0.0)

    def test_drop(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"z" * 32, dirty=False, now=0.0,
                     on_backing_store=True)
        cache.drop(pid(1))
        assert pid(1) not in cache
        with pytest.raises(KeyError):
            cache.drop(pid(1))

    def test_entry_version_tracked(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"v" * 16, dirty=True, now=0.0,
                     content_version=42)
        assert cache.entry_version(pid(1)) == 42

    def test_entries_pack_densely(self):
        """Compressed pages pack one after another with 36-byte headers."""
        cache, _, _, _ = make_cache()
        for n in range(4):
            cache.insert(pid(n), b"d" * 1000, dirty=True, now=0.0)
        assert cache.nframes == 2  # 4 x 1036 bytes pack into 2 frames
        assert cache.live_bytes == 4 * 1036


class TestFrameLifecycle:
    def test_frames_grow_with_inserts(self):
        cache, frames, _, _ = make_cache()
        assert cache.nframes == 0
        cache.insert(pid(1), b"a" * 3000, dirty=True, now=0.0)
        assert cache.nframes == 1
        cache.insert(pid(2), b"b" * 3000, dirty=True, now=0.0)
        assert cache.nframes == 2  # second entry spans into a new frame
        assert frames.owned_by(FrameOwner.COMPRESSION) == 2

    def test_emptied_frames_released(self):
        cache, frames, _, _ = make_cache()
        for n in range(8):
            cache.insert(pid(n), b"c" * 950, dirty=False, now=0.0,
                         on_backing_store=True)
        mapped = cache.nframes
        for n in range(8):
            cache.fetch(pid(n))
        assert cache.nframes <= 1  # only the tail frame may linger
        assert frames.owned_by(FrameOwner.COMPRESSION) <= 1
        assert cache.counters.frames_released >= mapped - 1

    def test_oldest_age(self):
        cache, _, _, _ = make_cache()
        assert cache.oldest_entry_age(5.0) is None
        cache.insert(pid(1), b"a" * 10, dirty=True, now=2.0)
        cache.insert(pid(2), b"b" * 10, dirty=True, now=4.0)
        assert cache.oldest_entry_age(5.0) == pytest.approx(3.0)
        assert cache.coldest_age(5.0) == pytest.approx(3.0)


class TestSlotStates:
    def test_figure2_states(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"a" * 3000, dirty=True, now=0.0)
        cache.insert(pid(2), b"b" * 3000, dirty=False, now=0.0,
                     on_backing_store=True)
        states = cache.slot_states()
        assert SlotState.DIRTY in states.values()
        # After cleaning, the dirty slots become clean.
        cache.clean_pages(10)
        states = cache.slot_states()
        assert SlotState.DIRTY not in states.values()

    def test_unmapped_slot_is_free(self):
        cache, _, _, _ = make_cache()
        assert cache.slot_state(99) == SlotState.FREE


class TestCleaning:
    def test_clean_pages_writes_oldest_dirty(self):
        cache, _, fragstore, _ = make_cache()
        cache.insert(pid(1), b"a" * 500, dirty=True, now=0.0)
        cache.insert(pid(2), b"b" * 500, dirty=True, now=1.0)
        written = cache.clean_pages(1)
        assert written == 1
        assert fragstore.contains(pid(1))       # oldest first
        assert not fragstore.contains(pid(2))
        assert not cache.is_dirty(pid(1))
        assert cache.is_dirty(pid(2))

    def test_clean_pages_respects_limit(self):
        cache, _, _, _ = make_cache()
        for n in range(6):
            cache.insert(pid(n), b"x" * 200, dirty=True, now=0.0)
        assert cache.clean_pages(4) == 4
        assert cache.dirty_pages() == 2

    def test_clean_charged_to_ledger(self):
        from repro.sim.ledger import TimeCategory

        cache, _, _, ledger = make_cache()
        for n in range(40):
            cache.insert(pid(n), b"y" * 1020, dirty=True, now=0.0)
        cache.clean_pages(40)
        assert ledger.total(TimeCategory.CLEANER) > 0.0

    def test_written_callback_invoked(self):
        cache, _, _, _ = make_cache()
        calls = []
        cache.written_callback = lambda page, version: calls.append(
            (page, version)
        )
        cache.insert(pid(3), b"z" * 100, dirty=True, now=0.0,
                     content_version=7)
        cache.clean_pages(1)
        assert calls == [(pid(3), 7)]


class TestShrink:
    def test_shrink_clean_frame_is_free(self):
        cache, frames, _, ledger = make_cache()
        for n in range(8):
            cache.insert(pid(n), b"c" * 950, dirty=False, now=0.0,
                         on_backing_store=True)
        nframes = cache.nframes
        busy_before = ledger.total()
        assert cache.shrink_one() is not None
        assert cache.nframes < nframes
        assert ledger.total() == busy_before  # no I/O for clean data

    def test_shrink_dirty_frame_writes_out(self):
        cache, _, fragstore, _ = make_cache()
        for n in range(8):
            cache.insert(pid(n), b"d" * 950, dirty=True, now=0.0)
        assert cache.shrink_one() is not None
        assert fragstore.counters.pages_put >= 1
        assert cache.counters.evicted_dirty_pages >= 1

    def test_shrink_prefers_clean_frames(self):
        cache, _, fragstore, _ = make_cache()
        # Frame 0: dirty entries; frame 1: clean entries.
        cache.insert(pid(1), b"a" * 4000, dirty=True, now=0.0)
        cache.insert(pid(2), b"b" * 3800, dirty=False, now=0.0,
                     on_backing_store=True)
        cache.insert(pid(3), b"c" * 3800, dirty=False, now=0.0,
                     on_backing_store=True)
        puts_before = fragstore.counters.pages_put
        cache.shrink_one()
        # A clean frame was chosen: nothing was written out.
        assert fragstore.counters.pages_put == puts_before

    def test_cannot_shrink_tail_only(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"t" * 100, dirty=True, now=0.0)
        assert cache.shrink_one() is None

    def test_empty_cache_cannot_shrink(self):
        cache, _, _, _ = make_cache()
        assert cache.shrink_one() is None


class TestFixedSize:
    def test_max_frames_enforced(self):
        """Section 4.2's original fixed-size prototype."""
        cache, _, _, _ = make_cache(nframes=16, max_frames=2)
        for n in range(20):
            cache.insert(pid(n), b"f" * 1000, dirty=True, now=float(n))
        assert cache.nframes <= 2

    def test_invalid_max_frames(self):
        with pytest.raises(ValueError):
            make_cache(max_frames=0)


class TestReclaimableAccounting:
    def test_counts_match_ground_truth(self):
        cache, _, _, _ = make_cache(nframes=32)
        for n in range(12):
            cache.insert(pid(n), bytes([n]) * (300 + 251 * (n % 5)),
                         dirty=(n % 3 != 0), now=float(n))
        cache.clean_pages(3)
        for n in (1, 5, 7):
            cache.fetch(pid(n))
        _assert_accounting(cache)

    def test_dirty_pages_counter(self):
        cache, _, _, _ = make_cache()
        cache.insert(pid(1), b"a" * 10, dirty=True, now=0.0)
        cache.insert(pid(2), b"b" * 10, dirty=False, now=0.0,
                     on_backing_store=True)
        assert cache.dirty_pages() == 1
        cache.clean_pages(5)
        assert cache.dirty_pages() == 0


def _assert_accounting(cache):
    """Compare incremental counters against recomputed ground truth."""
    true_dirty_entries = sum(
        1 for e in cache._entries.values() if e.header.dirty
    )
    assert cache._dirty_entries == true_dirty_entries
    for index, slot in cache._frames.items():
        true_pages = {
            p for p, e in cache._entries.items()
            if index in cache._overlapped(e)
        }
        assert set(slot.pages) == true_pages, f"frame {index} pages"
        # shrink_one consumes slot.pages in registration order and
        # depends on it being ascending by entry offset.
        offsets = [cache._entries[p].offset for p in slot.pages]
        assert offsets == sorted(offsets), f"frame {index} page order"
        true_dirty = sum(
            1 for p in true_pages if cache._entries[p].header.dirty
        )
        assert slot.dirty_pages == true_dirty, f"frame {index} dirty"
    true_dirty_frames = sum(
        1 for s in cache._frames.values() if s.dirty_pages > 0
    )
    assert cache._dirty_frames == true_dirty_frames
