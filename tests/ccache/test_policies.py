"""Cleaner policy, adaptive gate, headers/overheads."""

import pytest

from repro.ccache.cleaner import CleanerPolicy
from repro.ccache.header import (
    CODE_SIZE_BYTES,
    COMPRESSED_PAGE_HEADER_BYTES,
    FRAME_HEADER_BYTES,
    HASH_TABLE_BYTES,
    SLOT_DESCRIPTOR_BYTES,
    CompressedPageHeader,
    cache_metadata_bytes,
)
from repro.ccache.threshold import AdaptiveCompressionGate
from repro.mem.page import PageId


class TestCleanerPolicy:
    def test_idle_when_enough_free(self):
        policy = CleanerPolicy(free_goal_frames=8)
        assert policy.pages_to_clean(8, 0, 100) == 0
        assert policy.pages_to_clean(100, 0, 100) == 0

    def test_cleans_when_short_on_clean_frames(self):
        policy = CleanerPolicy()
        assert policy.pages_to_clean(0, 0, 100) > 0

    def test_idle_when_target_met(self):
        policy = CleanerPolicy(target_clean_fraction=0.25)
        assert policy.pages_to_clean(0, 25, 100) == 0

    def test_monotone_in_cache_size(self):
        policy = CleanerPolicy(max_batch_pages=1000)
        small = policy.pages_to_clean(0, 0, 10)
        large = policy.pages_to_clean(0, 0, 200)
        assert large >= small

    def test_anti_monotone_in_reclaimable(self):
        policy = CleanerPolicy(max_batch_pages=1000)
        none_clean = policy.pages_to_clean(0, 0, 100)
        some_clean = policy.pages_to_clean(0, 10, 100)
        assert some_clean <= none_clean

    def test_batch_cap(self):
        policy = CleanerPolicy(max_batch_pages=5)
        assert policy.pages_to_clean(0, 0, 10000) == 5

    def test_empty_cache_never_cleans(self):
        assert CleanerPolicy().pages_to_clean(0, 0, 0) == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CleanerPolicy().pages_to_clean(-1, 0, 10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CleanerPolicy(target_clean_fraction=1.5)
        with pytest.raises(ValueError):
            CleanerPolicy(pages_per_frame_estimate=0)


class TestAdaptiveGate:
    def test_disabled_gate_always_open(self):
        gate = AdaptiveCompressionGate(enabled=False)
        for _ in range(200):
            gate.record(False)
        assert gate.open

    def test_closes_on_sustained_poor_compression(self):
        gate = AdaptiveCompressionGate(window=10, min_keep_rate=0.3,
                                       cooloff_pages=20)
        for _ in range(10):
            gate.record(False)
        assert not gate.open
        assert gate.times_closed == 1

    def test_stays_open_on_good_compression(self):
        gate = AdaptiveCompressionGate(window=10, min_keep_rate=0.3)
        for _ in range(50):
            gate.record(True)
        assert gate.open

    def test_reopens_after_cooloff(self):
        gate = AdaptiveCompressionGate(window=4, min_keep_rate=0.5,
                                       cooloff_pages=3)
        for _ in range(4):
            gate.record(False)
        assert not gate.open
        for _ in range(3):
            gate.note_bypass()
        assert gate.open
        assert gate.pages_bypassed == 3

    def test_needs_full_window_before_closing(self):
        gate = AdaptiveCompressionGate(window=10, min_keep_rate=0.5)
        for _ in range(9):
            gate.record(False)
        assert gate.open  # not enough samples yet

    def test_keep_rate_reporting(self):
        gate = AdaptiveCompressionGate(window=4)
        assert gate.recent_keep_rate == 1.0
        gate.record(True)
        gate.record(False)
        assert gate.recent_keep_rate == 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveCompressionGate(window=0)
        with pytest.raises(ValueError):
            AdaptiveCompressionGate(min_keep_rate=1.5)
        with pytest.raises(ValueError):
            AdaptiveCompressionGate(cooloff_pages=0)

    def test_snapshot_counts_probes_bypasses_and_transitions(self):
        gate = AdaptiveCompressionGate(window=4, min_keep_rate=0.5,
                                       cooloff_pages=3)
        for _ in range(4):
            gate.record(False)  # closes
        for _ in range(3):
            gate.note_bypass()  # reopens at the third bypass
        gate.record(True)
        snap = gate.snapshot()
        assert snap["enabled"] is True
        assert snap["open"] is True
        assert snap["probes"] == 5
        assert snap["pages_bypassed"] == 3
        assert snap["times_closed"] == 1
        assert snap["times_reopened"] == 1
        assert snap["window"] == 4
        assert snap["min_keep_rate"] == 0.5
        assert snap["cooloff_pages"] == 3

    def test_disabled_snapshot_counts_probes(self):
        gate = AdaptiveCompressionGate(enabled=False)
        gate.record(False)
        gate.record(True)
        snap = gate.snapshot()
        assert snap["enabled"] is False
        assert snap["probes"] == 2
        assert snap["times_closed"] == 0


class TestHeaders:
    def test_paper_constants(self):
        """Section 4.4's exact numbers."""
        assert SLOT_DESCRIPTOR_BYTES == 8
        assert FRAME_HEADER_BYTES == 24
        assert COMPRESSED_PAGE_HEADER_BYTES == 36
        assert HASH_TABLE_BYTES == 16 * 1024
        assert CODE_SIZE_BYTES == 22 * 1024

    def test_frame_header_fraction(self):
        """24 bytes per 4-KByte frame is the paper's 0.6% overhead."""
        assert FRAME_HEADER_BYTES / 4096 == pytest.approx(0.006, abs=0.001)

    def test_header_footprint(self):
        header = CompressedPageHeader(PageId(0, 1), 1000, True, 0.0)
        assert header.footprint == 1036

    def test_metadata_bytes(self):
        total = cache_metadata_bytes(
            max_cache_frames=1000, mapped_frames=100, compressed_pages=300
        )
        assert total == (
            8 * 1000 + 24 * 100 + 36 * 300 + 16 * 1024
        )

    def test_metadata_validation(self):
        with pytest.raises(ValueError):
            cache_metadata_bytes(10, 11, 0)
        with pytest.raises(ValueError):
            cache_metadata_bytes(-1, 0, 0)
