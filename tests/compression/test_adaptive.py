"""Unit tests for the adaptive per-page kernel selector."""

from __future__ import annotations

import hashlib
import struct

import pytest

from repro.compression import (
    CompressionResult,
    CorruptDataError,
    available,
    create,
)
from repro.compression.adaptive import (
    DEFAULT_CANDIDATES,
    KERNEL_TAGS,
    AdaptiveCompressor,
    page_kind,
)
from repro.compression.sampler import clear_shared_results

PAGE = 4096


def random_page(seed: int, size: int = PAGE) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.blake2b(
            seed.to_bytes(4, "little") + counter.to_bytes(4, "little"),
            digest_size=64,
        ).digest()
        counter += 1
    return bytes(out[:size])


def mixed_pages() -> list:
    """One page per content class plus edge cases."""
    dictionary = b"the quick brown fox jumps over the lazy dog "
    return [
        bytes(PAGE),
        b"\x05\x00\x00\x00\x06\x00\x00\x00" * (PAGE // 8),
        struct.pack(f"<{PAGE // 4}I",
                    *[(0x40000000 + i * 3) & 0xFFFFFFFF
                      for i in range(PAGE // 4)]),
        (dictionary * (PAGE // len(dictionary) + 1))[:PAGE],
        random_page(9),
        b"",
        b"xy",
    ]


def test_registered_and_no_arg_constructible():
    assert "adaptive" in available()
    kernel = create("adaptive")
    assert isinstance(kernel, AdaptiveCompressor)
    assert kernel.candidate_names == DEFAULT_CANDIDATES


def test_round_trip_mixed_pages():
    kernel = AdaptiveCompressor()
    for data in mixed_pages():
        result = kernel.compress(data)
        assert kernel.decompress(result) == data
        assert result.compressed_size <= max(len(data), 1)


def test_rejects_nested_adaptive_and_unknown_candidates():
    with pytest.raises(ValueError):
        AdaptiveCompressor(candidates=("adaptive",))
    with pytest.raises(ValueError):
        AdaptiveCompressor(candidates=("no-such-kernel",))
    with pytest.raises(ValueError):
        AdaptiveCompressor(candidates=())


def test_opts_out_of_shared_result_cache():
    # The learned memo makes output order-dependent; process-wide
    # sharing between instances would be incorrect.
    assert AdaptiveCompressor().result_cache_key() is None


def test_payloads_are_self_describing_across_instances():
    """Any instance decompresses any other's payload — the demotion
    sink recompression path depends on this."""
    writer = AdaptiveCompressor()
    reader = AdaptiveCompressor(candidates=("rle",))  # disjoint memo
    for data in mixed_pages():
        result = writer.compress(data)
        assert reader.decompress(result) == data


def test_selection_is_deterministic_across_instances():
    """Two fresh instances fed the same page sequence make identical
    choices and produce identical payloads (the digest-pinning
    property), cold or warm shared cache."""
    pages = mixed_pages() * 3
    clear_shared_results()
    first = AdaptiveCompressor()
    results_a = [first.compress(p) for p in pages]
    second = AdaptiveCompressor()  # shared cache now warm
    results_b = [second.compress(p) for p in pages]
    assert [r.payload for r in results_a] == [r.payload for r in results_b]
    assert first.selection_snapshot() == second.selection_snapshot()


def test_picks_smallest_eligible_kernel_per_page():
    """On each trial page the tagged payload is within one tag byte of
    the best candidate kernel's output."""
    kernel = AdaptiveCompressor()
    singles = [create(name) for name in DEFAULT_CANDIDATES]
    for data in mixed_pages():
        if not data:
            continue
        result = kernel.compress(data)
        best = min(s.compress(data).compressed_size for s in singles)
        assert result.compressed_size <= min(best + 1, len(data))


def test_memo_hits_accumulate_and_counters_snapshot():
    kernel = AdaptiveCompressor(resample_every=4)
    page = b"\x07\x00\x00\x00" * (PAGE // 4)
    variants = [page[:-4] + bytes([i, 0, 0, 0]) for i in range(8)]
    for v in variants:
        kernel.compress(v)
    snap = kernel.selection_snapshot()
    assert snap["pages"] == 8
    assert snap["trials"] >= 1
    assert snap["memo_hits"] >= 1
    assert sum(snap["chosen"].values()) + snap["raw_fallbacks"] == 8
    # Identical bytes re-seen replay the finished result.
    kernel.compress(variants[0])
    assert kernel.selection_snapshot()["result_hits"] == 1


def test_raw_fallback_on_incompressible():
    kernel = AdaptiveCompressor()
    result = kernel.compress(random_page(4))
    assert result.stored_raw
    assert kernel.selection_snapshot()["raw_fallbacks"] == 1
    assert kernel.decompress(result) == random_page(4)


def test_unknown_tag_and_empty_payload_raise():
    kernel = AdaptiveCompressor()
    with pytest.raises(CorruptDataError):
        kernel.decompress(CompressionResult(b"", PAGE))
    bogus = max(KERNEL_TAGS.values()) + 17
    with pytest.raises(CorruptDataError):
        kernel.decompress(CompressionResult(bytes([bogus, 0, 0]), PAGE))


def test_page_kind_buckets_are_stable_and_cheap():
    zeros = page_kind(bytes(PAGE))
    text = page_kind(b"abcdefgh" * (PAGE // 8))
    assert zeros != text
    assert page_kind(bytes(PAGE)) == zeros
    assert page_kind(b"xy") == ("tiny", 2)


def test_tag_table_is_total_over_registered_kernels():
    """Every registered kernel except the selector itself has a frozen
    payload tag — a new kernel must claim one to join the candidates."""
    for name in available():
        if name == "adaptive":
            continue
        assert name in KERNEL_TAGS, f"kernel {name!r} has no payload tag"
    assert len(set(KERNEL_TAGS.values())) == len(KERNEL_TAGS)
