"""Cross-algorithm behaviour: LZSS, RLE, WK, null."""

import pytest

from repro.compression import Lzss, NullCompressor, Rle, WkCompressor, create

from ..conftest import PAGE, sample_pages


class TestLzss:
    def test_round_trips(self, rng):
        lzss = Lzss()
        for label, data in sample_pages(rng).items():
            assert lzss.decompress(lzss.compress(data)) == data, label

    def test_beats_or_matches_lzrw1(self, rng):
        """The slower encoder never loses to the fast one on kept pages."""
        lzss = Lzss()
        lzrw1 = create("lzrw1")
        for label, data in sample_pages(rng).items():
            fast = lzrw1.compress(data).compressed_size
            slow = lzss.compress(data).compressed_size
            assert slow <= fast, label

    def test_lazy_matching_helps(self):
        data = (b"abcde abcd abcdef abc abcdefgh " * 150)[:PAGE]
        lazy = Lzss(lazy=True).compress(data).compressed_size
        greedy = Lzss(lazy=False).compress(data).compressed_size
        assert lazy <= greedy

    def test_chain_depth_improves_ratio(self, rng):
        data = sample_pages(rng)["text"]
        shallow = Lzss(chain_depth=1).compress(data).compressed_size
        deep = Lzss(chain_depth=64).compress(data).compressed_size
        assert deep <= shallow

    def test_invalid_chain_depth(self):
        with pytest.raises(ValueError):
            Lzss(chain_depth=0)


class TestRle:
    def test_round_trips(self, rng):
        rle = Rle()
        for label, data in sample_pages(rng).items():
            assert rle.decompress(rle.compress(data)) == data, label

    def test_runs_compress(self):
        rle = Rle()
        assert rle.compress(bytes(PAGE)).ratio < 0.02

    def test_alternating_bytes_stored_raw(self):
        rle = Rle()
        data = bytes(i & 1 for i in range(PAGE))
        result = rle.compress(data)
        assert result.stored_raw
        assert rle.decompress(result) == data

    def test_max_run_boundary(self):
        rle = Rle()
        for n in (2, 3, 129, 130, 131, 260, 261):
            data = b"z" * n
            assert rle.decompress(rle.compress(data)) == data

    def test_long_literal_blocks(self):
        rle = Rle()
        data = bytes(range(256)) * 3  # literals > 128 bytes, no runs
        assert rle.decompress(rle.compress(data)) == data


class TestWk:
    def test_round_trips(self, rng):
        wk = WkCompressor()
        for label, data in sample_pages(rng).items():
            assert wk.decompress(wk.compress(data)) == data, label

    def test_zero_words_dominate(self):
        wk = WkCompressor()
        assert wk.compress(bytes(PAGE)).ratio < 0.1

    def test_pointer_like_data(self):
        # Words sharing high 22 bits: the partial-match case WK targets.
        import struct

        base = 0x7FFF1000
        words = [base | (i % 7) for i in range(PAGE // 4)]
        data = struct.pack(f"<{len(words)}I", *words)
        wk = WkCompressor()
        result = wk.compress(data)
        # Partial matches cost 2+4+10 = 16 bits per 32-bit word: ~0.5.
        assert result.ratio < 0.55
        assert wk.decompress(result) == data

    def test_unaligned_tail(self):
        wk = WkCompressor()
        for extra in (1, 2, 3):
            data = bytes(PAGE) + b"xyz"[:extra]
            assert wk.decompress(wk.compress(data)) == data

    def test_tiny_input_stored_raw(self):
        wk = WkCompressor()
        result = wk.compress(b"ab")
        assert result.stored_raw


class TestNull:
    def test_identity(self, rng):
        null = NullCompressor()
        for data in sample_pages(rng).values():
            result = null.compress(data)
            assert result.stored_raw
            assert result.compressed_size == len(data)
            assert null.decompress(result) == data
