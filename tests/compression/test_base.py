"""Compressor framework: registry, results, verification."""

import pytest

from repro.compression import (
    CompressionResult,
    Compressor,
    CorruptDataError,
    UnknownCompressorError,
    available,
    create,
    iter_compressors,
    register,
)


class TestRegistry:
    def test_expected_algorithms_registered(self):
        assert set(available()) >= {"lzrw1", "lzss", "rle", "wk", "null"}

    def test_create_by_name(self):
        assert create("lzrw1").name == "lzrw1"

    def test_create_with_kwargs(self):
        compressor = create("lzrw1", table_bits=10)
        assert compressor.hash_table_bytes == 4 * 1024

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownCompressorError) as excinfo:
            create("zstd")
        assert "lzrw1" in str(excinfo.value)  # lists known names

    def test_iter_compressors_yields_all(self):
        names = [c.name for c in iter_compressors()]
        assert names == sorted(names)
        assert "lzrw1" in names

    def test_register_rejects_non_compressor(self):
        with pytest.raises(TypeError):
            register("bogus")(dict)


class TestCompressionResult:
    def test_ratio(self):
        result = CompressionResult(b"abcd", 16)
        assert result.ratio == 0.25
        assert result.compressed_size == 4
        assert result.savings() == 12

    def test_ratio_of_empty_input(self):
        assert CompressionResult(b"", 0).ratio == 1.0

    def test_negative_savings_on_expansion(self):
        result = CompressionResult(b"abcdef", 4)
        assert result.savings() == -2


class TestVerification:
    def test_compress_verified_catches_broken_algorithm(self):
        class Broken(Compressor):
            name = "broken"

            def compress(self, data):
                return CompressionResult(data[:-1] if data else b"", len(data))

            def decompress(self, result):
                return result.payload

        with pytest.raises(CorruptDataError):
            Broken().compress_verified(b"hello world")
