"""The application-specific varint-delta posting-list codec."""

import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import CompressionResult, create
from repro.compression.base import CorruptDataError
from repro.compression.delta import VarintDeltaCompressor


@pytest.fixture
def codec():
    return VarintDeltaCompressor()


def posting_page(seed=0, start=1000, max_gap=64, nwords=1024):
    rng = random.Random(seed)
    value = start
    words = []
    for _ in range(nwords):
        value += rng.randrange(1, max_gap)
        words.append(value)
    return struct.pack(f"<{nwords}I", *words)


class TestRoundTrip:
    def test_posting_arrays(self, codec):
        data = posting_page()
        result = codec.compress(data)
        assert codec.decompress(result) == data

    def test_mixed_ascending_and_raw(self, codec, rng):
        words = []
        value = 10
        for index in range(512):
            if index % 16 < 10:
                value += rng.randrange(1, 9)
                words.append(value)
            else:
                words.append(rng.randrange(1 << 32))
        data = struct.pack("<512I", *words)
        assert codec.decompress(codec.compress(data)) == data

    def test_unaligned_tail(self, codec):
        data = posting_page(nwords=64) + b"xyz"
        assert codec.decompress(codec.compress(data)) == data

    def test_tiny_input_stored_raw(self, codec):
        result = codec.compress(b"ab")
        assert result.stored_raw

    def test_equal_values_are_ascending(self, codec):
        data = struct.pack("<256I", *([7] * 256))
        result = codec.compress(data)
        assert not result.stored_raw
        assert result.ratio < 0.3  # each zero gap costs one byte per word
        assert codec.decompress(result) == data

    def test_registered(self):
        assert create("varint-delta").name == "varint-delta"


class TestQuality:
    def test_beats_lzrw1_on_postings(self, codec):
        """The whole point of application-specific compression."""
        lzrw1 = create("lzrw1")
        data = posting_page()
        assert codec.compress(data).ratio < lzrw1.compress(data).ratio / 1.5

    def test_small_gaps_compress_harder(self, codec):
        tight = posting_page(max_gap=4)
        loose = posting_page(max_gap=100000)
        assert codec.compress(tight).ratio < codec.compress(loose).ratio

    def test_random_data_stored_raw(self, codec, rng):
        data = bytes(rng.randrange(256) for _ in range(4096))
        assert codec.compress(data).stored_raw


class TestCorruption:
    def test_bad_tag(self, codec):
        with pytest.raises(CorruptDataError):
            codec.decompress(CompressionResult(b"\xff\x01", 16))

    def test_truncated_raw_run(self, codec):
        payload = bytes([0x00, 0x04]) + b"\x01\x02"
        with pytest.raises(CorruptDataError):
            codec.decompress(CompressionResult(payload, 16))

    def test_truncated_varint(self, codec):
        with pytest.raises(CorruptDataError):
            codec.decompress(CompressionResult(b"\x01\x80", 16))

    def test_wrong_length_detected(self, codec):
        data = posting_page(nwords=64)
        result = codec.compress(data)
        lying = CompressionResult(result.payload, 999999)
        with pytest.raises(CorruptDataError):
            codec.decompress(lying)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=0, max_size=2048))
def test_round_trips_arbitrary_bytes(data):
    codec = VarintDeltaCompressor()
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=60, deadline=None)
@given(
    gaps=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=500),
    start=st.integers(0, 1 << 30),
)
def test_round_trips_ascending_words(gaps, start):
    codec = VarintDeltaCompressor()
    words = []
    value = start
    for gap in gaps:
        value = min(value + gap, (1 << 32) - 1)
        words.append(value)
    data = struct.pack(f"<{len(words)}I", *words)
    assert codec.decompress(codec.compress(data)) == data
