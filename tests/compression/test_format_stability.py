"""Known-answer tests: the stored formats are stable.

Compressed payloads may be written to trace files or compared across
runs; these tests pin the exact bytes each encoder produces for fixed
inputs so accidental format changes are caught (a change here is a
breaking change, not a refactor).
"""

from repro.compression import create


class TestLzrw1Format:
    def test_simple_repeat(self):
        result = create("lzrw1").compress(b"abcabcabcabc")
        # 3 literals 'a' 'b' 'c', then one 9-byte self-overlapping copy
        # at offset 3 (control word 0x0008 marks item 3 as the copy).
        assert not result.stored_raw
        assert result.payload == bytes(
            [0x08, 0x00,            # control: item 3 is a copy
             97, 98, 99,            # literals a b c
             0x60, 0x03]            # copy len 9 ((6)+3), offset 3
        )

    def test_run_of_zeros(self):
        result = create("lzrw1").compress(bytes(64))
        assert not result.stored_raw
        # literal 0, then chained max-length overlapping copies.
        assert result.payload == bytes(
            [0x1E, 0x00,            # control: items 1-4 are copies
             0,                     # literal zero byte
             0xF0, 0x01,            # copy len 18, offset 1
             0xF0, 0x12,            # copy len 18, offset 18
             0xF0, 0x12,            # copy len 18, offset 18
             0x60, 0x12]            # copy len 9, offset 18
        )

    def test_decode_of_pinned_payload(self):
        from repro.compression import CompressionResult

        payload = bytes([0x08, 0x00, 97, 98, 99, 0x60, 0x03])
        restored = create("lzrw1").decompress(
            CompressionResult(payload, 12)
        )
        assert restored == b"abcabcabcabc"


class TestRleFormat:
    def test_run_encoding(self):
        result = create("rle").compress(b"aaaaa" + b"xy")
        # run header 0x7D + 5 = 0x82, byte 'a', literal block of 2.
        assert result.payload == bytes([0x82, 97, 0x01, 120, 121])


class TestVarintDeltaFormat:
    def test_ascending_run(self):
        import struct

        data = struct.pack("<6I", 10, 11, 13, 16, 20, 25)
        result = create("varint-delta").compress(data)
        assert result.payload == bytes(
            [0x01, 6, 10, 1, 2, 3, 4, 5]
        )


class TestWkFormat:
    def test_zero_page_header(self):
        import struct

        result = create("wk").compress(bytes(64))
        nwords, tag_len, index_len, low_len = struct.unpack(
            "<IHHH", result.payload[:10]
        )
        assert nwords == 16
        assert tag_len == 4      # 16 two-bit tags
        assert index_len == 0
        assert low_len == 0
