"""Golden-output tests: the optimized kernels equal the seed kernels.

The LZRW1/LZSS rewrites in this repository are *pure* speed work — every
compressed payload must be byte-identical to what the seed
implementations (frozen in ``repro.compression._seed_reference``)
produce, or the paper's Table 1 / Figure 3 ratios silently drift.  Two
layers of protection:

* every page in a deterministic corpus is compressed by both encoders
  and the payloads diffed directly;
* an aggregate SHA-256 over all corpus payloads is pinned, so even a
  coordinated edit of kernel *and* reference is caught.
"""

from __future__ import annotations

import hashlib
import random
from typing import List

import pytest

from repro.compression._seed_reference import SeedLzrw1, SeedLzss
from repro.compression.lzrw1 import Lzrw1
from repro.compression.lzss import Lzss
from repro.workloads import contentgen

#: Aggregate SHA-256 of (payload + raw-flag byte) over the whole corpus,
#: computed from the seed kernels.  Pinned: a change here is a breaking
#: format change, not a refactor.
GOLDEN_DIGESTS = {
    "lzrw1-tb12": "81e8b2c46fc5cf625df66e9e33bd1823009229048d1d6edbaecca6e937c7f26a",
    "lzrw1-tb6": "a4a41bf84300590de491a1fa714fdbb814711175d0ba8b83c8826c1b0aab766b",
    "lzss-d16-lazy": "484cf0e285e91e1046c8fc1972946203c67c340931e2a489e019fef7bb44020c",
    "lzss-d4-greedy": "6df98f7c48d1f17c4820e6bd0a2105652ac13f050655b304fea7c29647e53b56",
}


def golden_corpus() -> List[bytes]:
    """Deterministic pages spanning every workload's compressibility."""
    pages: List[bytes] = []
    dictionary = contentgen.make_dictionary()
    for page_number in range(4):
        pages += [
            contentgen.repeating_pattern(page_number),
            contentgen.incompressible(page_number),
            contentgen.dp_band_values(page_number),
            contentgen.index_page(page_number),
            contentgen.cache_table_page(page_number),
            contentgen.text_page_random(page_number, dictionary),
            contentgen.text_page_clustered(page_number, dictionary),
        ]
    rng = random.Random(0xC0FFEE)
    pages += [
        bytes(4096),
        b"\xff" * 4096,
        (b"the quick brown fox jumps over the lazy dog " * 100)[:4096],
        bytes(rng.randrange(256) for _ in range(4096)),
        (bytes(rng.randrange(256) for _ in range(512)) * 8)[:4096],
        b"".join((i & 0xFFFF).to_bytes(4, "little") for i in range(1024)),
    ]
    # Short inputs around the raw-fallback and group-flush boundaries.
    for n in (0, 1, 2, 3, 4, 5, 15, 16, 17, 31, 33, 255, 257, 1000):
        pages.append((b"abcabcabc!" * 110)[:n])
    return pages


PAIRS = {
    "lzrw1-tb12": (lambda: Lzrw1(), lambda: SeedLzrw1()),
    "lzrw1-tb6": (lambda: Lzrw1(table_bits=6), lambda: SeedLzrw1(table_bits=6)),
    "lzss-d16-lazy": (lambda: Lzss(), lambda: SeedLzss()),
    "lzss-d4-greedy": (
        lambda: Lzss(chain_depth=4, lazy=False),
        lambda: SeedLzss(chain_depth=4, lazy=False),
    ),
}


@pytest.mark.parametrize("variant", sorted(PAIRS))
def test_bit_identical_to_seed_kernel(variant):
    live_factory, seed_factory = PAIRS[variant]
    live, seed = live_factory(), seed_factory()
    digest = hashlib.sha256()
    for page in golden_corpus():
        got = live.compress(page)
        want = seed.compress(page)
        assert got.payload == want.payload, (
            f"{variant}: payload diverges on a {len(page)}-byte page"
        )
        assert got.stored_raw == want.stored_raw
        assert got.original_size == want.original_size == len(page)
        digest.update(got.payload)
        digest.update(b"\x00" if got.stored_raw else b"\x01")
    assert digest.hexdigest() == GOLDEN_DIGESTS[variant], (
        f"{variant}: corpus digest changed — the stored format moved"
    )


@pytest.mark.parametrize("variant", sorted(PAIRS))
def test_decompressors_agree_on_seed_payloads(variant):
    """The optimized decoder accepts the seed encoder's payloads verbatim."""
    live_factory, seed_factory = PAIRS[variant]
    live, seed = live_factory(), seed_factory()
    for page in golden_corpus():
        result = seed.compress(page)
        assert live.decompress(result) == page
        assert seed.decompress(live.compress(page)) == page
