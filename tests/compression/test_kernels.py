"""Unit tests for the BDI, FPC, and C-Pack page kernels.

Each kernel gets: round trips over crafted pages exercising every
encoding arm, an effectiveness check on the content class it was built
for, raw fallback on incompressible input, and corrupt-payload
rejection (truncation, unknown headers, garbage) — decompress must
raise :class:`CorruptDataError`, never return wrong bytes or crash with
an unrelated exception.
"""

from __future__ import annotations

import hashlib
import struct

import pytest

from repro.compression import CorruptDataError, create
from repro.compression.bdi import (
    _PAGE_LINES,
    _PAGE_SAME8,
    _PAGE_ZERO,
    BdiCompressor,
)
from repro.compression.cpack import CpackCompressor
from repro.compression.fpc import FpcCompressor

PAGE = 4096

KERNELS = [BdiCompressor, FpcCompressor, CpackCompressor]


def random_page(seed: int, size: int = PAGE) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.blake2b(
            seed.to_bytes(4, "little") + counter.to_bytes(4, "little"),
            digest_size=64,
        ).digest()
        counter += 1
    return bytes(out[:size])


def near_base_page(base: int = 0x7F001000, size: int = PAGE) -> bytes:
    """Pointer-ish values clustered near one base (BDI's home turf)."""
    words = [(base + (i * 7) % 100) & 0xFFFFFFFF for i in range(size // 4)]
    return struct.pack(f"<{len(words)}I", *words)


def small_int_page(size: int = PAGE) -> bytes:
    """Counters and small indices (FPC's home turf)."""
    words = [(i * 3) % 1000 for i in range(size // 4)]
    return struct.pack(f"<{len(words)}I", *words)


def repeated_word_page(size: int = PAGE) -> bytes:
    """A few distinct words recurring (C-Pack's dictionary turf)."""
    vocab = [0xDEADBEEF, 0x12345678, 0, 0xCAFED00D, 0xDEADBE01]
    words = [vocab[(i * i) % len(vocab)] for i in range(size // 4)]
    return struct.pack(f"<{len(words)}I", *words)


CRAFTED = [
    b"",
    b"\x00",
    b"ab",
    bytes(PAGE),                              # zero page
    b"\x11\x22\x33\x44\x55\x66\x77\x88" * (PAGE // 8),  # same-filled
    near_base_page(),
    small_int_page(),
    repeated_word_page(),
    random_page(1),
    random_page(2, size=100),                 # sub-line page + odd tail
    near_base_page(size=PAGE - 3),            # tail not word-aligned
    small_int_page(size=66),                  # one line + 2-byte tail
    b"The quick brown fox jumps over the lazy dog. " * 91,
]


@pytest.mark.parametrize("kernel_cls", KERNELS)
@pytest.mark.parametrize("data", CRAFTED, ids=range(len(CRAFTED)))
def test_round_trip_crafted(kernel_cls, data):
    kernel = kernel_cls()
    result = kernel.compress(data)
    assert result.original_size == len(data)
    assert kernel.decompress(result) == data


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_raw_fallback_on_incompressible(kernel_cls):
    result = kernel_cls().compress(random_page(3))
    assert result.stored_raw
    assert result.compressed_size == PAGE


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_cache_keys_are_distinct(kernel_cls):
    keys = {cls().result_cache_key() for cls in KERNELS}
    assert len(keys) == len(KERNELS)
    assert kernel_cls().result_cache_key() is not None


def test_bdi_compresses_near_base_data():
    result = BdiCompressor().compress(near_base_page())
    assert not result.stored_raw
    # 64-byte lines with 1-byte deltas: ~17/64 plus headers.
    assert result.compressed_size < PAGE // 3


def test_bdi_page_fast_paths():
    bdi = BdiCompressor()
    assert bdi.compress(bytes(PAGE)).compressed_size == 1
    assert bdi.compress(b"\x01\x02\x03\x04\x05\x06\x07\x08" * 512
                        ).compressed_size == 9


def test_fpc_compresses_small_integers():
    # 16-bit-representable words cost 3+16 bits against 32 raw: ~60%,
    # comfortably under the 4:3 keep threshold (75%).
    result = FpcCompressor().compress(small_int_page())
    assert not result.stored_raw
    assert result.compressed_size < (3 * PAGE) // 4


def test_cpack_compresses_repeated_words():
    result = CpackCompressor().compress(repeated_word_page())
    assert not result.stored_raw
    assert result.compressed_size < PAGE // 2


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_truncated_payload_raises(kernel_cls):
    kernel = kernel_cls()
    compressed = 0
    for data in (near_base_page(), small_int_page(),
                 repeated_word_page(), bytes(PAGE)):
        result = kernel.compress(data)
        if result.stored_raw:
            continue
        compressed += 1
        for cut in (1, result.compressed_size // 2,
                    result.compressed_size - 1):
            truncated = result.__class__(
                result.payload[:cut], result.original_size
            )
            if truncated.payload == result.payload:
                continue
            with pytest.raises(CorruptDataError):
                kernel.decompress(truncated)
    assert compressed >= 2, "kernel compressed too few probe pages"


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_empty_payload_raises(kernel_cls):
    from repro.compression import CompressionResult

    with pytest.raises(CorruptDataError):
        kernel_cls().decompress(CompressionResult(b"", PAGE))


def test_bdi_rejects_unknown_page_header():
    from repro.compression import CompressionResult

    with pytest.raises(CorruptDataError):
        BdiCompressor().decompress(CompressionResult(bytes([250]), PAGE))


def test_bdi_rejects_malformed_fast_paths():
    from repro.compression import CompressionResult

    bdi = BdiCompressor()
    with pytest.raises(CorruptDataError):
        # Zero-page header with trailing garbage.
        bdi.decompress(CompressionResult(bytes([_PAGE_ZERO, 1]), PAGE))
    with pytest.raises(CorruptDataError):
        # Same-filled header with a short repeat value.
        bdi.decompress(CompressionResult(bytes([_PAGE_SAME8, 1, 2]), PAGE))
    with pytest.raises(CorruptDataError):
        # Line stream with an unknown line encoding.
        bdi.decompress(CompressionResult(bytes([_PAGE_LINES, 99]), PAGE))


@pytest.mark.parametrize("kernel_cls", [FpcCompressor, CpackCompressor])
def test_word_kernels_reject_absurd_word_count(kernel_cls):
    """A header claiming more words than the page holds must not be
    trusted (it would otherwise loop or return wrong-length output)."""
    from repro.compression import CompressionResult

    bogus = struct.pack("<I", 10**6) + b"\x00" * 32
    with pytest.raises(CorruptDataError):
        kernel_cls().decompress(CompressionResult(bogus, PAGE))
