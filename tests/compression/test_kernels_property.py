"""Property-based round trips: every registered kernel over every
content kind the workload generators produce.

``test_roundtrip_property.py`` drives the kernels with synthetic byte
strings; this module closes the realism gap by sampling from the actual
``contentgen`` corpus — the page classes the simulator pushes through
the compression cache — plus hypothesis-perturbed variants (bit flips
and truncations of real pages, which is how mutated pages reach the
kernels mid-run).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.compression import available, create
from repro.workloads import contentgen

_ALGORITHMS = sorted(available())

_DICTIONARY = contentgen.make_dictionary()

#: One generator per content kind (mirrors ``repro.perf._corpus_kinds``).
_KIND_GENERATORS = {
    "tiled": lambda i: contentgen.repeating_pattern(i),
    "dp": lambda i: contentgen.dp_band_values(i),
    "random": lambda i: contentgen.incompressible(i),
    "index": lambda i: contentgen.index_page(i),
    "ctab": lambda i: contentgen.cache_table_page(i),
    "text": lambda i: contentgen.text_page_random(i, _DICTIONARY),
    "textc": lambda i: contentgen.text_page_clustered(i, _DICTIONARY),
    "zeros": lambda i: bytes(4096),
}


def _kind_pages():
    """A page drawn from a random content kind, optionally perturbed."""
    base = st.tuples(
        st.sampled_from(sorted(_KIND_GENERATORS)),
        st.integers(min_value=0, max_value=63),
    ).map(lambda t: _KIND_GENERATORS[t[0]](t[1]))

    def perturb(args):
        data, flips, cut = args
        page = bytearray(data[:cut] if cut else data)
        for pos, value in flips:
            if page:
                page[pos % len(page)] ^= value
        return bytes(page)

    return st.tuples(
        base,
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=4095),
                      st.integers(min_value=1, max_value=255)),
            max_size=8,
        ),
        st.one_of(st.just(0),
                  st.integers(min_value=1, max_value=4096)),
    ).map(perturb)


@settings(max_examples=150, deadline=None)
@given(name=st.sampled_from(_ALGORITHMS), data=_kind_pages())
def test_every_kernel_round_trips_every_content_kind(name, data):
    kernel = create(name)
    result = kernel.compress(data)
    assert kernel.decompress(result) == data
    assert result.original_size == len(data)
    assert result.compressed_size <= max(len(data), 1)


@settings(max_examples=60, deadline=None)
@given(data=_kind_pages())
def test_adaptive_never_loses_to_candidates_by_more_than_tag(data):
    """The selector's output is within one tag byte of the best
    candidate on pages it runs trials for (fresh instance => trial)."""
    from repro.compression.adaptive import DEFAULT_CANDIDATES

    adaptive = create("adaptive")
    result = adaptive.compress(data)
    if not data:
        return
    best = min(
        create(name).compress(data).compressed_size
        for name in DEFAULT_CANDIDATES
    )
    assert result.compressed_size <= min(best + 1, len(data))
