"""LZRW1 unit tests: format, round trips, corruption handling."""

import random

import pytest

from repro.compression.base import CorruptDataError
from repro.compression.lzrw1 import Lzrw1

from ..conftest import PAGE, sample_pages


@pytest.fixture
def lz():
    return Lzrw1()


class TestRoundTrip:
    def test_sample_pages(self, lz, rng):
        for label, data in sample_pages(rng).items():
            result = lz.compress(data)
            assert lz.decompress(result) == data, label

    def test_empty(self, lz):
        result = lz.compress(b"")
        assert result.stored_raw
        assert lz.decompress(result) == b""

    def test_single_byte(self, lz):
        result = lz.compress(b"x")
        assert lz.decompress(result) == b"x"

    def test_below_min_match(self, lz):
        for n in range(1, 5):
            data = b"ab" * n
            assert lz.decompress(lz.compress(data)) == data

    def test_all_lengths_around_group_boundary(self, lz):
        # Group flushes happen every 16 items; exercise sizes around them.
        for n in (15, 16, 17, 31, 32, 33, 255, 256, 257):
            data = (b"abcabcabc" * 40)[:n]
            assert lz.decompress(lz.compress(data)) == data

    def test_overlapping_copy(self, lz):
        # "aaaa..." forces self-overlapping matches (offset 1).
        data = b"a" * 1000
        result = lz.compress(data)
        assert result.compressed_size < 200
        assert lz.decompress(result) == data

    def test_max_match_runs(self, lz):
        # Long runs decompose into chained 18-byte copies.
        data = b"xyz" * 600
        result = lz.compress(data)
        assert result.ratio < 0.25
        assert lz.decompress(result) == data


class TestCompressionQuality:
    def test_incompressible_stored_raw(self, lz, rng):
        data = bytes(rng.randrange(256) for _ in range(PAGE))
        result = lz.compress(data)
        assert result.stored_raw
        assert result.compressed_size == PAGE

    def test_zero_page_compresses_hard(self, lz):
        result = lz.compress(bytes(PAGE))
        assert result.ratio < 0.15

    def test_text_compresses_well(self, lz):
        data = (b"compression cache compression cache " * 200)[:PAGE]
        assert lz.compress(data).ratio < 0.2

    def test_never_expands(self, lz, rng):
        # The raw fallback caps stored size at the original size.
        for data in sample_pages(rng).values():
            assert lz.compress(data).compressed_size <= len(data)

    def test_window_limit_respected(self, lz):
        # Repeats farther apart than 4095 bytes cannot be matched.
        seed = bytes(random.Random(3).randrange(256) for _ in range(4200))
        data = seed + seed  # repeat beyond the offset window start
        result = lz.compress(data)
        assert lz.decompress(result) == data


class TestHashTableSizing:
    def test_default_matches_paper(self):
        # Section 4.4: "the hash table is 16 Kbytes".
        assert Lzrw1().hash_table_bytes == 16 * 1024

    def test_table_size_changes_output(self, rng):
        # Collisions in a small table alter match choices; on varied
        # inputs the aggregate effect is close to neutral per page but
        # the outputs genuinely differ (both must still round trip).
        data = sample_pages(rng)["counter"]
        big = Lzrw1(table_bits=12)
        small = Lzrw1(table_bits=6)
        big_out = big.compress(data)
        small_out = small.compress(data)
        assert big.decompress(big_out) == data
        assert small.decompress(small_out) == data
        assert small_out.compressed_size >= big_out.compressed_size

    def test_table_memory_scales(self):
        assert Lzrw1(table_bits=10).hash_table_bytes == 4096
        assert Lzrw1(table_bits=14).hash_table_bytes == 64 * 1024

    def test_small_table_still_round_trips(self, rng):
        small = Lzrw1(table_bits=5)
        for data in sample_pages(rng).values():
            assert small.decompress(small.compress(data)) == data

    def test_invalid_table_bits_rejected(self):
        with pytest.raises(ValueError):
            Lzrw1(table_bits=2)
        with pytest.raises(ValueError):
            Lzrw1(table_bits=25)


class TestCorruption:
    def test_truncated_payload(self, lz):
        data = (b"hello world " * 400)[:PAGE]
        result = lz.compress(data)
        assert not result.stored_raw
        from repro.compression.base import CompressionResult

        broken = CompressionResult(result.payload[:-3], result.original_size)
        with pytest.raises(CorruptDataError):
            lz.decompress(broken)

    def test_bad_offset_detected(self, lz):
        from repro.compression.base import CompressionResult

        # Control word 0x0001 marks item 0 as a copy with offset 0.
        payload = bytes([0x01, 0x00, 0x00, 0x00])
        with pytest.raises(CorruptDataError):
            lz.decompress(CompressionResult(payload, 16))

    def test_short_output_detected(self, lz):
        from repro.compression.base import CompressionResult

        # One literal but the caller claims 100 original bytes.
        payload = bytes([0x00, 0x00, ord("a")])
        with pytest.raises(CorruptDataError):
            lz.decompress(CompressionResult(payload, 100))

    def test_compress_verified_passes(self, lz, rng):
        for data in sample_pages(rng).values():
            lz.compress_verified(data)
