"""Property-based round-trip guarantees for every registered algorithm."""

import zlib

from hypothesis import given, settings, strategies as st

from repro.compression import available, create

_ALGORITHMS = sorted(available())


def _payloads():
    """Byte strings across the compressibility spectrum."""
    return st.one_of(
        st.binary(min_size=0, max_size=2048),
        # Highly repetitive inputs (tile a short seed).
        st.tuples(
            st.binary(min_size=1, max_size=64),
            st.integers(min_value=1, max_value=128),
        ).map(lambda t: (t[0] * t[1])[:4096]),
        # Word-structured inputs.
        st.lists(
            st.integers(min_value=0, max_value=2**32 - 1),
            min_size=0,
            max_size=512,
        ).map(lambda ws: b"".join(w.to_bytes(4, "little") for w in ws)),
    )


@settings(max_examples=120, deadline=None)
@given(name=st.sampled_from(_ALGORITHMS), data=_payloads())
def test_round_trip(name, data):
    compressor = create(name)
    result = compressor.compress(data)
    assert compressor.decompress(result) == data


@settings(max_examples=120, deadline=None)
@given(name=st.sampled_from(_ALGORITHMS), data=_payloads())
def test_never_expands_beyond_raw(name, data):
    """The raw fallback bounds stored size by the input size."""
    result = create(name).compress(data)
    assert result.compressed_size <= max(len(data), 1)
    assert result.original_size == len(data)


@settings(max_examples=60, deadline=None)
@given(data=_payloads())
def test_lzrw1_tracks_entropy(data):
    """LZRW1 must compress at least somewhat when zlib compresses 4x.

    A weak sanity bound tying our encoder to a reference: if the data is
    extremely redundant, LZRW1 should achieve at least 2:1.
    """
    if len(data) < 256:
        return
    zlib_ratio = len(zlib.compress(data, 6)) / len(data)
    if zlib_ratio < 0.25:
        ours = create("lzrw1").compress(data).ratio
        assert ours <= 0.5


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=1, max_size=1024))
def test_lzss_never_worse_than_lzrw1(data):
    fast = create("lzrw1").compress(data).compressed_size
    slow = create("lzss").compress(data).compressed_size
    assert slow <= fast
