"""Compression sampler: memoization correctness and modes."""

import pytest

from repro.compression import CompressionSampler, create

from ..conftest import sample_pages


@pytest.fixture
def sampler():
    return CompressionSampler(create("lzrw1"))


class TestMemoization:
    def test_agrees_with_exact(self, rng):
        exact = CompressionSampler(create("lzrw1"), exact=True)
        memo = CompressionSampler(create("lzrw1"))
        for data in sample_pages(rng).values():
            assert memo.compressed_size(data) == exact.compressed_size(data)
            assert memo.compressed_size(data) == exact.compressed_size(data)

    def test_hits_counted(self, sampler, rng):
        data = sample_pages(rng)["text"]
        sampler.compressed_size(data)
        sampler.compressed_size(data)
        assert sampler.hits == 1
        assert sampler.misses == 1
        assert 0.0 < sampler.hit_rate <= 0.5

    def test_exact_mode_never_caches(self, rng):
        exact = CompressionSampler(create("lzrw1"), exact=True)
        data = sample_pages(rng)["text"]
        exact.compressed_size(data)
        exact.compressed_size(data)
        assert exact.hits == 0
        assert exact.misses == 2

    def test_capacity_bound(self):
        sampler = CompressionSampler(create("null"), max_entries=4)
        for i in range(10):
            sampler.compressed_size(bytes([i]) * 64)
        assert len(sampler._size_cache) <= 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CompressionSampler(create("null"), max_entries=0)

    def test_clear(self, sampler, rng):
        sampler.compressed_size(sample_pages(rng)["text"])
        sampler.clear()
        assert sampler.hits == 0 and sampler.misses == 0
        assert len(sampler._size_cache) == 0

    def test_precomputed_fingerprint_hits_same_entry(self, sampler, rng):
        data = sample_pages(rng)["text"]
        fp = CompressionSampler.fingerprint(data)
        # Seed the memo *without* a fingerprint, probe *with* one (and
        # vice versa): both spellings must address the same entry.
        size = sampler.compressed_size(data)
        assert sampler.compressed_size(data, fingerprint=fp) == size
        assert sampler.hits == 1
        assert sampler.compress(data, fingerprint=fp).compressed_size == size
        assert sampler.compressed_size(data) == size
        assert sampler.hits == 2
        # compress() without keep_payloads always *accounts* a miss (the
        # shared result cache may spare the kernel run, never the count).
        assert sampler.misses == 2


class TestStableKeys:
    def test_stable_key_shares_measurement(self, sampler, rng):
        pages = sample_pages(rng)
        size1 = sampler.compressed_size(pages["text"], stable_key="page-1")
        # A different buffer under the same key reuses the measurement.
        size2 = sampler.compressed_size(pages["tiled"], stable_key="page-1")
        assert size1 == size2
        assert sampler.hits == 1

    def test_stable_key_ignored_in_exact_mode(self, rng):
        exact = CompressionSampler(create("lzrw1"), exact=True)
        pages = sample_pages(rng)
        size1 = exact.compressed_size(pages["text"], stable_key="k")
        size2 = exact.compressed_size(pages["random"], stable_key="k")
        assert size1 != size2

    def test_stable_key_approximation_is_tight_for_small_writes(self, rng):
        """One-word updates move LZRW1 sizes by well under the 4:3 slack."""
        import struct

        exact = CompressionSampler(create("lzrw1"), exact=True)
        base = bytearray(sample_pages(rng)["tiled"])
        size0 = exact.compressed_size(bytes(base))
        struct.pack_into("<I", base, 0, 0xDEADBEEF)
        size1 = exact.compressed_size(bytes(base))
        assert abs(size1 - size0) < 64


class TestSharedResults:
    """Process-wide content-addressed reuse of deterministic results."""

    @pytest.fixture(autouse=True)
    def _fresh_shared_cache(self):
        from repro.compression import sampler as sampler_mod

        sampler_mod.clear_shared_results()
        yield
        sampler_mod.clear_shared_results()

    @staticmethod
    def _counting_lzrw1():
        from repro.compression.lzrw1 import Lzrw1

        class Counting(Lzrw1):
            calls = 0

            def compress(self, data):
                Counting.calls += 1
                return super().compress(data)

        return Counting

    def test_kernel_runs_once_across_instances(self, rng):
        counting = self._counting_lzrw1()
        data = sample_pages(rng)["text"]
        a = CompressionSampler(counting())
        b = CompressionSampler(counting())
        assert a.compressed_size(data) == b.compressed_size(data)
        # Accounting stays per-instance: each sampler saw the content for
        # the first time, so each counts a miss ...
        assert (a.misses, b.misses) == (1, 1)
        # ... but the kernel only ran for the first one.
        assert counting.calls == 1

    def test_exact_mode_never_replays(self, rng):
        counting = self._counting_lzrw1()
        data = sample_pages(rng)["text"]
        CompressionSampler(counting()).compressed_size(data)
        exact = CompressionSampler(counting(), exact=True)
        exact.compressed_size(data)
        exact.compressed_size(data)
        assert counting.calls == 3

    def test_stable_key_miss_replays_by_content(self, rng):
        # The memo key is the stable key, but the kernel-run shortcut is
        # addressed by the bytes themselves — so a second run measuring
        # identical content under any stable key skips the kernel.
        counting = self._counting_lzrw1()
        data = sample_pages(rng)["text"]
        a = CompressionSampler(counting())
        b = CompressionSampler(counting())
        size_a = a.compressed_size(data, stable_key="run1-page7")
        size_b = b.compressed_size(data, stable_key="run2-page7")
        assert size_a == size_b
        assert (a.misses, b.misses) == (1, 1)
        assert counting.calls == 1

    def test_stable_keys_never_shared(self, rng):
        pages = sample_pages(rng)
        a = CompressionSampler(create("lzrw1"))
        b = CompressionSampler(create("lzrw1"))
        a.compressed_size(pages["text"], stable_key="k")
        # b's first measurement under the same stable key must measure
        # *its own* bytes — a's mapping of "k" to content is per-run.
        size_b = b.compressed_size(pages["random"], stable_key="k")
        exact = CompressionSampler(create("lzrw1"), exact=True)
        assert size_b == exact.compressed_size(pages["random"])


class TestPayloads:
    def test_keep_payloads_round_trips(self, rng):
        sampler = CompressionSampler(create("lzrw1"), keep_payloads=True)
        data = sample_pages(rng)["text"]
        result = sampler.compress(data)
        assert sampler.compressor.decompress(result) == data

    def test_payload_cache_hit(self, rng):
        sampler = CompressionSampler(create("lzrw1"), keep_payloads=True)
        data = sample_pages(rng)["text"]
        first = sampler.compress(data)
        second = sampler.compress(data)
        assert first is second
