"""Compression sampler: memoization correctness and modes."""

import pytest

from repro.compression import CompressionSampler, create

from ..conftest import sample_pages


@pytest.fixture
def sampler():
    return CompressionSampler(create("lzrw1"))


class TestMemoization:
    def test_agrees_with_exact(self, rng):
        exact = CompressionSampler(create("lzrw1"), exact=True)
        memo = CompressionSampler(create("lzrw1"))
        for data in sample_pages(rng).values():
            assert memo.compressed_size(data) == exact.compressed_size(data)
            assert memo.compressed_size(data) == exact.compressed_size(data)

    def test_hits_counted(self, sampler, rng):
        data = sample_pages(rng)["text"]
        sampler.compressed_size(data)
        sampler.compressed_size(data)
        assert sampler.hits == 1
        assert sampler.misses == 1
        assert 0.0 < sampler.hit_rate <= 0.5

    def test_exact_mode_never_caches(self, rng):
        exact = CompressionSampler(create("lzrw1"), exact=True)
        data = sample_pages(rng)["text"]
        exact.compressed_size(data)
        exact.compressed_size(data)
        assert exact.hits == 0
        assert exact.misses == 2

    def test_capacity_bound(self):
        sampler = CompressionSampler(create("null"), max_entries=4)
        for i in range(10):
            sampler.compressed_size(bytes([i]) * 64)
        assert len(sampler._size_cache) <= 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CompressionSampler(create("null"), max_entries=0)

    def test_clear(self, sampler, rng):
        sampler.compressed_size(sample_pages(rng)["text"])
        sampler.clear()
        assert sampler.hits == 0 and sampler.misses == 0
        assert len(sampler._size_cache) == 0


class TestStableKeys:
    def test_stable_key_shares_measurement(self, sampler, rng):
        pages = sample_pages(rng)
        size1 = sampler.compressed_size(pages["text"], stable_key="page-1")
        # A different buffer under the same key reuses the measurement.
        size2 = sampler.compressed_size(pages["tiled"], stable_key="page-1")
        assert size1 == size2
        assert sampler.hits == 1

    def test_stable_key_ignored_in_exact_mode(self, rng):
        exact = CompressionSampler(create("lzrw1"), exact=True)
        pages = sample_pages(rng)
        size1 = exact.compressed_size(pages["text"], stable_key="k")
        size2 = exact.compressed_size(pages["random"], stable_key="k")
        assert size1 != size2

    def test_stable_key_approximation_is_tight_for_small_writes(self, rng):
        """One-word updates move LZRW1 sizes by well under the 4:3 slack."""
        import struct

        exact = CompressionSampler(create("lzrw1"), exact=True)
        base = bytearray(sample_pages(rng)["tiled"])
        size0 = exact.compressed_size(bytes(base))
        struct.pack_into("<I", base, 0, 0xDEADBEEF)
        size1 = exact.compressed_size(bytes(base))
        assert abs(size1 - size0) < 64


class TestPayloads:
    def test_keep_payloads_round_trips(self, rng):
        sampler = CompressionSampler(create("lzrw1"), keep_payloads=True)
        data = sample_pages(rng)["text"]
        result = sampler.compress(data)
        assert sampler.compressor.decompress(result) == data

    def test_payload_cache_hit(self, rng):
        sampler = CompressionSampler(create("lzrw1"), keep_payloads=True)
        data = sample_pages(rng)["text"]
        first = sampler.compress(data)
        second = sampler.compress(data)
        assert first is second
