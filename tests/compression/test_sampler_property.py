"""Memoized and exact sampler modes must agree for every algorithm.

The simulator's results are only trustworthy if the memoized sampler is a
pure cache: for any sequence of page contents, the sizes it reports must
equal what the exact mode (which runs the real compressor every time)
reports.  This holds by construction only if compressors are
deterministic functions of their input — which is itself worth pinning,
since the optimized kernels carry persistent scratch state (hash tables,
epoch stamps) across calls.
"""

from hypothesis import given, settings, strategies as st

from repro.compression import available, create
from repro.compression.sampler import CompressionSampler

_ALGORITHMS = sorted(available())


def _pages():
    """Short page-like buffers, with duplicates likely between draws."""
    repetitive = st.tuples(
        st.binary(min_size=1, max_size=32),
        st.integers(min_value=1, max_value=64),
    ).map(lambda t: (t[0] * t[1])[:1024])
    return st.lists(
        st.one_of(st.binary(min_size=0, max_size=512), repetitive),
        min_size=1,
        max_size=12,
    )


@settings(max_examples=40, deadline=None)
@given(pages=_pages(), data=st.data())
def test_memo_agrees_with_exact(pages, data):
    """Sizes and payload round trips match between the two modes."""
    algorithm = data.draw(st.sampled_from(_ALGORITHMS))
    memo = CompressionSampler(create(algorithm), keep_payloads=True)
    exact = CompressionSampler(create(algorithm), exact=True)
    # Feed duplicates so the memo path actually serves hits.
    stream = pages + pages
    for page in stream:
        assert memo.compressed_size(page) == exact.compressed_size(page)
        got = memo.compress(page)
        want = exact.compress(page)
        assert got.compressed_size == want.compressed_size
        assert got.stored_raw == want.stored_raw
        assert got.payload == want.payload
    assert memo.hits > 0  # the duplicated stream must hit the memo


@settings(max_examples=20, deadline=None)
@given(pages=_pages(), data=st.data())
def test_memo_eviction_stays_correct(pages, data):
    """A tiny memo that constantly evicts still reports exact sizes."""
    algorithm = data.draw(st.sampled_from(_ALGORITHMS))
    memo = CompressionSampler(create(algorithm), max_entries=2)
    exact = CompressionSampler(create(algorithm), exact=True)
    for page in pages + pages:
        assert memo.compressed_size(page) == exact.compressed_size(page)


def test_fingerprint_is_content_based():
    """Equal bytes fingerprint equally; different bytes differ."""
    a = CompressionSampler.fingerprint(b"x" * 4096)
    b = CompressionSampler.fingerprint(bytes(b"x" * 4096))
    c = CompressionSampler.fingerprint(b"y" * 4096)
    assert a == b
    assert a != c
    assert isinstance(a, bytes)  # stable across runs, unlike hash()
