"""The 4:3 threshold and Table 1 accounting."""

import pytest

from repro.compression import CompressionStats, CompressionThreshold


class TestThreshold:
    def test_paper_default_is_4_to_3(self):
        threshold = CompressionThreshold()
        assert threshold.factor == pytest.approx(4.0 / 3.0)
        assert threshold.max_fraction == pytest.approx(0.75)

    def test_boundary(self):
        threshold = CompressionThreshold()
        assert threshold.keep_compressed(4096, 3072)       # exactly 4:3
        assert not threshold.keep_compressed(4096, 3073)   # just over

    def test_strong_compression_kept(self):
        assert CompressionThreshold().keep_compressed(4096, 1024)

    def test_no_compression_rejected(self):
        assert not CompressionThreshold().keep_compressed(4096, 4096)

    def test_zero_size_page(self):
        assert not CompressionThreshold().keep_compressed(0, 0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            CompressionThreshold(0.5)


class TestStats:
    def test_table1_columns(self):
        stats = CompressionStats()
        assert stats.record(4096, 1024)   # kept, 25%
        assert stats.record(4096, 2048)   # kept, 50%
        assert not stats.record(4096, 4000)  # uncompressible
        assert stats.pages_compressed == 2
        assert stats.pages_uncompressible == 1
        assert stats.mean_ratio_percent == pytest.approx(37.5)
        assert stats.uncompressible_percent == pytest.approx(100.0 / 3.0)

    def test_overall_factor(self):
        stats = CompressionStats()
        stats.record(4096, 1024)
        assert stats.overall_factor == pytest.approx(4.0)

    def test_empty_stats(self):
        stats = CompressionStats()
        assert stats.total_pages == 0
        assert stats.mean_ratio_percent == 100.0
        assert stats.uncompressible_percent == 0.0
        assert stats.overall_factor == 1.0

    def test_merge(self):
        a = CompressionStats()
        b = CompressionStats()
        a.record(4096, 1024)
        b.record(4096, 4096)
        a.merge(b)
        assert a.total_pages == 2
        assert a.pages_uncompressible == 1

    def test_summary_readable(self):
        stats = CompressionStats()
        stats.record(4096, 1024)
        text = stats.summary()
        assert "1 pages" in text
        assert "25%" in text
