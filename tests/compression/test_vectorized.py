"""Golden-output tests: the vectorized kernels equal the scalar kernels.

The ``fast=`` numpy paths in :mod:`repro.compression.vectorized` are
*pure* speed work — every compressed payload must be byte-identical to
the scalar encoder's, or the golden RunResult digests and the shared
kernel-result cache (which assumes one canonical payload per page) break
silently.  Same two-layer protection as ``test_golden_kernels.py``:

* every page in a deterministic corpus spanning all content kinds
  (including pathological/incompressible pages and run/segment boundary
  cases) is compressed by both paths and the payloads diffed directly;
* an aggregate SHA-256 over all scalar payloads is pinned, so a
  coordinated edit of both paths is caught.

Without numpy the ``fast=True`` constructors silently fall back to the
scalar loop, so these tests still pass — they then assert scalar ==
scalar, and ``test_fast_flag_resolution`` checks the fallback wiring.
"""

from __future__ import annotations

import hashlib
import random
from typing import List

import pytest

from repro.compression import vectorized
from repro.compression.delta import VarintDeltaCompressor
from repro.compression.lzrw1 import Lzrw1
from repro.compression.lzss import Lzss
from repro.compression.rle import Rle
from repro.compression.wk import WkCompressor
from repro.workloads import contentgen

#: Aggregate SHA-256 of (payload + raw-flag byte) over the whole corpus,
#: computed from the scalar kernels.  Pinned: a change here is a breaking
#: format change, not a refactor.
GOLDEN_DIGESTS = {
    "rle": "d48a8de6b18b808c94b9ba2b4ccda8833ae539a4c3c5854789c776abd5bddc41",
    "wk": "86d02efb79ceff07a0830059a05bd1ce6ba70c9f2fc44dd400c8055b6c40fef0",
    "varint-delta": (
        "47444306da064992768dab4ef79c84bb68634f54a3c8e32d6e65223d95693d21"
    ),
}


def golden_corpus() -> List[bytes]:
    """Deterministic pages spanning every content kind plus edge cases."""
    pages: List[bytes] = []
    dictionary = contentgen.make_dictionary()
    for page_number in range(4):
        pages += [
            contentgen.repeating_pattern(page_number),
            contentgen.incompressible(page_number),
            contentgen.dp_band_values(page_number),
            contentgen.index_page(page_number),
            contentgen.cache_table_page(page_number),
            contentgen.text_page_random(page_number, dictionary),
            contentgen.text_page_clustered(page_number, dictionary),
        ]
    rng = random.Random(0xC0FFEE)
    pages += [
        bytes(4096),
        b"\xff" * 4096,
        (b"the quick brown fox jumps over the lazy dog " * 100)[:4096],
        bytes(rng.randrange(256) for _ in range(4096)),
        (bytes(rng.randrange(256) for _ in range(512)) * 8)[:4096],
        b"".join((i & 0xFFFF).to_bytes(4, "little") for i in range(1024)),
    ]
    # Short inputs around the raw-fallback and chunk-flush boundaries.
    for n in (0, 1, 2, 3, 4, 5, 15, 16, 17, 31, 33, 255, 257, 1000):
        pages.append((b"abcabcabc!" * 110)[:n])
    # RLE run-chunk boundaries (130/260 straddles) and word-segment
    # boundaries for the delta codec (descending, large-gap ascending).
    pages += [
        b"a" * 131,
        b"a" * 132,
        b"a" * 133,
        b"a" * 260 + b"xy",
        b"ab" * 2048,
        b"".join((4096 - i).to_bytes(4, "little") for i in range(1024)),
        b"".join((i * 200).to_bytes(4, "little") for i in range(1024)),
    ]
    return pages


PAIRS = {
    "rle": (lambda: Rle(fast=True), lambda: Rle(fast=False)),
    "wk": (
        lambda: WkCompressor(fast=True),
        lambda: WkCompressor(fast=False),
    ),
    "varint-delta": (
        lambda: VarintDeltaCompressor(fast=True),
        lambda: VarintDeltaCompressor(fast=False),
    ),
}


@pytest.mark.parametrize("variant", sorted(PAIRS))
def test_fast_bit_identical_to_scalar(variant):
    fast_factory, scalar_factory = PAIRS[variant]
    fast, scalar = fast_factory(), scalar_factory()
    digest = hashlib.sha256()
    for page in golden_corpus():
        got = fast.compress(page)
        want = scalar.compress(page)
        assert got.payload == want.payload, (
            f"{variant}: fast payload diverges on a {len(page)}-byte page"
        )
        assert got.stored_raw == want.stored_raw
        assert got.original_size == want.original_size == len(page)
        assert scalar.decompress(got) == page
        digest.update(want.payload)
        digest.update(b"\x00" if want.stored_raw else b"\x01")
    assert digest.hexdigest() == GOLDEN_DIGESTS[variant], (
        f"{variant}: corpus digest changed — the stored format moved"
    )


@pytest.mark.parametrize(
    "factory",
    [lambda: Lzrw1(fast=False), lambda: Lzss(fast=False)],
    ids=["lzrw1", "lzss"],
)
def test_scalar_hash_path_matches_default(factory):
    """fast=False (pure scalar hashing) emits the default kernel's bytes."""
    scalar, default = factory(), type(factory())()
    for page in golden_corpus():
        got = scalar.compress(page)
        want = default.compress(page)
        assert got.payload == want.payload
        assert got.stored_raw == want.stored_raw


def test_fast_flag_resolution():
    """``fast=False`` always forces scalar; otherwise numpy decides."""
    assert vectorized.enabled(False) is False
    assert vectorized.enabled(True) is vectorized.HAVE_NUMPY
    assert vectorized.enabled(None) is vectorized.HAVE_NUMPY
    assert Rle(fast=False)._use_fast is False
    assert Rle()._use_fast is vectorized.HAVE_NUMPY
    assert "fast kernels:" in vectorized.capability()


def test_mixed_mode_shared_results_are_safe():
    """Fast and scalar instances share one result-cache identity."""
    for fast_factory, scalar_factory in PAIRS.values():
        fast, scalar = fast_factory(), scalar_factory()
        key = fast.result_cache_key()
        assert key is not None
        assert key == scalar.result_cache_key()
