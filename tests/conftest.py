"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig

PAGE = 4096


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(0xC0FFEE)


def sample_pages(rng: random.Random) -> dict:
    """A spread of page contents across the compressibility spectrum."""
    return {
        "zeros": bytes(PAGE),
        "ones": b"\xff" * PAGE,
        "text": (b"the quick brown fox jumps over the lazy dog " * 100)[:PAGE],
        "random": bytes(rng.randrange(256) for _ in range(PAGE)),
        "tiled": (bytes(rng.randrange(256) for _ in range(512)) * 8)[:PAGE],
        "counter": b"".join(
            (i & 0xFFFF).to_bytes(4, "little") for i in range(PAGE // 4)
        ),
    }


def tiny_machine(compression_cache: bool = True, memory_mb: float = 1.0,
                 **overrides) -> MachineConfig:
    """A small machine config for fast integration tests."""
    return MachineConfig(
        memory_bytes=mbytes(memory_mb),
        compression_cache=compression_cache,
        **overrides,
    )


def run_workload_on(workload, config: MachineConfig, setup: bool = False):
    """Build, optionally warm up, run, and return (machine, result)."""
    machine = Machine(config, workload.build())
    engine = SimulationEngine(machine)
    if setup:
        engine.run(workload.setup_references())
        machine.reset_measurement()
    result = engine.run(workload.references())
    return machine, result
