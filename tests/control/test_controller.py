"""TierController policy: deadband, cooldown, veto, bounded actions.

These are unit tests against small fakes — the allocator records the
calls it receives and mirrors cap changes into the fake tier cache, so
every branch of the policy can be driven precisely.  End-to-end wiring
(real machine, real chain) is covered by test_machine_control.py.
"""

import pytest

from repro.control.controller import (
    ControlConfig,
    ControlCounters,
    TierController,
    TierTelemetry,
)
from repro.mem.frames import FrameOwner


class FakeCache:
    def __init__(self, nframes, max_frames):
        self.nframes = nframes
        self.max_frames = max_frames


class FakeTier:
    def __init__(self, name, nframes, max_frames):
        self.name = name
        self.cache = FakeCache(nframes, max_frames)


class FakeChain:
    def __init__(self, *tiers):
        self.tiers = list(tiers)
        self.warmest = tiers[0]


class FakePolicy:
    def terms_for(self, _key):
        return (2.0, 0.0)


class FakeAllocator:
    """Records calls; mirrors resizes into the registered fake cache."""

    def __init__(self, cache=None, released_per_shrink=0):
        self.policy = FakePolicy()
        self.cache = cache
        self.released = released_per_shrink
        self.calls = []

    def resize_pool(self, key, max_frames):
        old = self.cache.max_frames
        self.calls.append(("resize", key, max_frames))
        self.cache.max_frames = max_frames
        return self.released if max_frames < old else 0

    def retune(self, key, weight=None, bias_s=None):
        self.calls.append(("retune", key, weight, bias_s))
        return (weight, bias_s or 0.0)


def make_controller(config=None, nframes=90, max_frames=100,
                    total_frames=400, second_tier_capped=False):
    config = config or ControlConfig()
    if second_tier_capped:
        l1 = FakeTier("l1", nframes, None)
        l2 = FakeTier("l2", nframes, max_frames)
        chain = FakeChain(l1, l2)
        capped = l2
    else:
        capped = FakeTier("l1", nframes, max_frames)
        chain = FakeChain(capped, FakeTier("l2", 5, None))
    allocator = FakeAllocator(cache=capped.cache, released_per_shrink=3)
    telemetry = TierTelemetry(window_s=config.window_s,
                              windows=config.windows)
    counters = ControlCounters(log_limit=config.log_limit)
    controller = TierController(
        config, allocator, chain, telemetry, counters, total_frames
    )
    return controller, allocator, telemetry, counters


def feed_misses(telemetry, now, n=20):
    """Windowed demand faults that all went to the backing store."""
    for _ in range(n):
        telemetry.note_fault("fragstore", now)


def feed_hits(telemetry, now, n=20):
    """Windowed demand faults all served from the compressed tiers."""
    for _ in range(n):
        telemetry.note_fault("ccache", now)


class TestSkips:
    def test_quiet_window_never_acts(self):
        controller, allocator, telemetry, counters = make_controller()
        feed_misses(telemetry, 1.0, n=3)  # below min_window_faults
        controller.evaluate(1.0)
        assert counters.quiet_skips == 1
        assert counters.actions == 0
        assert allocator.calls == []

    def test_zero_fills_do_not_count_as_demand(self):
        controller, _, telemetry, counters = make_controller()
        for _ in range(50):
            telemetry.note_fault("zero-fill", 1.0)
        controller.evaluate(1.0)
        assert counters.quiet_skips == 1

    def test_in_band_miss_is_a_deadband_skip(self):
        controller, allocator, telemetry, counters = make_controller()
        # 25% misses == the target: inside the band.
        feed_misses(telemetry, 1.0, n=5)
        feed_hits(telemetry, 1.0, n=15)
        controller.evaluate(1.0)
        assert counters.deadband_skips == 1
        assert allocator.calls == []

    def test_cooldown_blocks_consecutive_actions(self):
        config = ControlConfig(cooldown_s=10.0)
        controller, allocator, telemetry, counters = make_controller(config)
        feed_misses(telemetry, 1.0)
        controller.evaluate(1.0)
        assert counters.actions == 1
        feed_misses(telemetry, 1.5)
        controller.evaluate(1.5)
        assert counters.cooldown_skips == 1
        assert counters.actions == 1
        # Past the cooldown the controller may act again.
        feed_misses(telemetry, 12.0)
        controller.evaluate(12.0)
        assert counters.actions == 2


class TestHighMiss:
    def test_full_tier_grows(self):
        controller, allocator, telemetry, counters = make_controller(
            nframes=95, max_frames=100
        )
        feed_misses(telemetry, 1.0)
        controller.evaluate(1.0)
        assert counters.grows == 1
        assert allocator.calls == [
            ("resize", FrameOwner.COMPRESSION,
             100 + controller.config.resize_step_frames)
        ]
        assert counters.log[0]["action"] == "grow"

    def test_underfull_tier_rebiases_instead(self):
        """Misses are high but the capped tier is not full: growing the
        cap would change nothing, so the warm weight drops (favoring
        compressed pages in the global trade)."""
        controller, allocator, telemetry, counters = make_controller(
            nframes=10, max_frames=100
        )
        feed_misses(telemetry, 1.0)
        controller.evaluate(1.0)
        assert counters.retunes == 1
        call = allocator.calls[0]
        assert call[:2] == ("retune", FrameOwner.COMPRESSION)
        assert call[2] == pytest.approx(2.0 / controller.config.weight_step)

    def test_ratio_veto_relaxes_instead_of_growing(self):
        """Compression above the ceiling: more compressed memory will
        not help, so the controller relaxes the warm weight upward."""
        controller, allocator, telemetry, counters = make_controller(
            nframes=95, max_frames=100
        )
        feed_misses(telemetry, 1.0)
        telemetry.note_deltas(1.0, comp_bytes_in=1000.0,
                              comp_bytes_out=950.0)  # 95% > 85% ceiling
        controller.evaluate(1.0)
        assert counters.ratio_vetoes == 1
        assert counters.grows == 0
        call = allocator.calls[0]
        assert call[:2] == ("retune", FrameOwner.COMPRESSION)
        assert call[2] == pytest.approx(2.0 * controller.config.weight_step)

    def test_grow_respects_cap_limit(self):
        """total_frames - min_resident - 2 bounds the cap; at the bound
        the grow falls through to a retune."""
        controller, allocator, telemetry, counters = make_controller(
            nframes=395, max_frames=396, total_frames=400
        )
        feed_misses(telemetry, 1.0)
        controller.evaluate(1.0)
        assert counters.grows == 0
        assert allocator.calls[0][0] == "retune"


class TestLowMiss:
    def test_idle_tier_shrinks_and_counts_released_frames(self):
        controller, allocator, telemetry, counters = make_controller(
            nframes=10, max_frames=100
        )
        feed_hits(telemetry, 1.0)
        controller.evaluate(1.0)
        assert counters.shrinks == 1
        assert counters.frames_released == 3  # the fake's per-shrink toll
        assert allocator.calls == [
            ("resize", FrameOwner.COMPRESSION,
             100 - controller.config.resize_step_frames)
        ]

    def test_busy_tier_is_not_shrunk(self):
        """Low misses with a full tier: the frames are earning their
        keep, and the weight is already at baseline — nothing to do."""
        controller, allocator, telemetry, counters = make_controller(
            nframes=95, max_frames=100
        )
        feed_hits(telemetry, 1.0)
        controller.evaluate(1.0)
        assert counters.actions == 0
        assert allocator.calls == []

    def test_shrink_never_goes_below_min_tier_frames(self):
        config = ControlConfig(min_tier_frames=8, resize_step_frames=8)
        controller, allocator, telemetry, counters = make_controller(
            config, nframes=1, max_frames=8
        )
        feed_hits(telemetry, 1.0)
        controller.evaluate(1.0)
        assert counters.shrinks == 0
        assert all(call[0] != "resize" for call in allocator.calls)

    def test_weight_relaxes_back_toward_baseline(self):
        config = ControlConfig(cooldown_s=0.01)
        controller, allocator, telemetry, counters = make_controller(
            config, nframes=95, max_frames=100
        )
        # Drive the weight down first (high miss, tier full -> grows; at
        # cap limit -> retunes down).  Simpler: call the retune directly.
        controller._retune_warm(1.0, 1.0)
        assert controller._warm_weight == 1.0
        feed_hits(telemetry, 2.0)
        controller.evaluate(2.0)
        retunes = [c for c in allocator.calls if c[0] == "retune"]
        assert retunes[-1][2] == pytest.approx(2.0)  # back at baseline


class TestTargetsAndBounds:
    def test_second_tier_capped_targets_cc_label(self):
        controller, allocator, telemetry, counters = make_controller(
            nframes=95, max_frames=100, second_tier_capped=True
        )
        feed_misses(telemetry, 1.0)
        controller.evaluate(1.0)
        assert allocator.calls[0][1] == "cc:l2"

    def test_no_capped_tier_means_no_resizes(self):
        l1 = FakeTier("l1", 50, None)
        chain = FakeChain(l1)
        allocator = FakeAllocator(cache=l1.cache)
        config = ControlConfig()
        telemetry = TierTelemetry()
        counters = ControlCounters()
        controller = TierController(
            config, allocator, chain, telemetry, counters, 400
        )
        feed_misses(telemetry, 1.0)
        controller.evaluate(1.0)
        # Only a retune is possible.
        assert all(call[0] == "retune" for call in allocator.calls)

    def test_retune_clamps_at_min_weight(self):
        config = ControlConfig(min_weight=0.5)
        controller, allocator, telemetry, counters = make_controller(config)
        assert controller._retune_warm(1.0, 0.001)
        assert controller._warm_weight == 0.5
        # Already clamped: a further push down is a no-op, not an action.
        assert not controller._retune_warm(2.0, 0.001)

    def test_action_log_is_bounded(self):
        config = ControlConfig(log_limit=2, cooldown_s=0.001)
        controller, allocator, telemetry, counters = make_controller(
            config, nframes=95, max_frames=16, total_frames=4000
        )
        for step in range(5):
            now = 1.0 + step
            feed_misses(telemetry, now)
            controller.evaluate(now)
        assert len(counters.log) == 2
        assert counters.log_dropped == counters.actions - 2


class TestProbing:
    def test_probe_stream_is_seeded_and_deterministic(self):
        def run():
            config = ControlConfig(probe_every=1, seed=7,
                                   cooldown_s=0.001)
            controller, allocator, telemetry, _ = make_controller(
                config, nframes=70, max_frames=100
            )
            for step in range(6):
                now = 1.0 + step
                # In-band traffic so every evaluation is a deadband
                # skip that triggers the probe path.
                feed_misses(telemetry, now, n=5)
                feed_hits(telemetry, now, n=15)
                controller.evaluate(now)
            return allocator.calls

        assert run() == run()

    def test_probing_disabled_by_default(self):
        controller, allocator, telemetry, counters = make_controller()
        for step in range(10):
            now = 1.0 + step
            feed_misses(telemetry, now, n=5)
            feed_hits(telemetry, now, n=15)
            controller.evaluate(now)
        assert counters.probes == 0


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="interval_s"):
            ControlConfig(interval_s=0.0)
        with pytest.raises(ValueError, match="target_miss_fraction"):
            ControlConfig(target_miss_fraction=1.5)
        with pytest.raises(ValueError, match="deadband"):
            ControlConfig(deadband=0.5)
        with pytest.raises(ValueError, match="weight_step"):
            ControlConfig(weight_step=1.0)
        with pytest.raises(ValueError, match="min_weight"):
            ControlConfig(min_weight=0.0)
        with pytest.raises(ValueError, match="max_tier_frames"):
            ControlConfig(max_tier_frames=2, min_tier_frames=8)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ControlConfig"):
            ControlConfig.from_dict({"no_such_knob": 1})

    def test_from_dict_round_trip(self):
        config = ControlConfig.from_dict(
            {"interval_s": 0.2, "seed": 3, "hotness": False}
        )
        assert config.interval_s == 0.2
        assert config.seed == 3
        assert config.hotness is False
