"""HotnessTracker: decayed frequency beats pure recency."""

import pytest

from repro.control.hotness import HotnessTracker


class TestScores:
    def test_untouched_page_scores_zero(self):
        t = HotnessTracker(half_life_s=1.0)
        assert t.score("p", 0.0) == 0.0
        assert not t.is_hot("p", 0.0)

    def test_single_touch_is_never_hot_at_default_threshold(self):
        t = HotnessTracker(half_life_s=1.0)
        t.touch("p", 0.0)
        assert t.score("p", 0.0) == pytest.approx(1.0)
        assert not t.is_hot("p", 0.0)  # threshold 2.0

    def test_repeated_touches_accumulate(self):
        t = HotnessTracker(half_life_s=10.0)
        for i in range(3):
            t.touch("p", float(i) * 0.01)
        assert t.score("p", 0.02) > 2.0
        assert t.is_hot("p", 0.02)

    def test_score_decays_by_half_life(self):
        t = HotnessTracker(half_life_s=1.0)
        t.touch("p", 0.0)
        assert t.score("p", 1.0) == pytest.approx(0.5)
        assert t.score("p", 2.0) == pytest.approx(0.25)

    def test_frequency_beats_recency(self):
        """The Ariadne observation: a page touched many times a moment
        ago outranks a page touched once just now."""
        t = HotnessTracker(half_life_s=1.0)
        for i in range(10):
            t.touch("busy", i * 0.01)
        t.touch("fresh", 0.2)
        assert t.score("busy", 0.2) > t.score("fresh", 0.2)

    def test_idle_page_goes_cold(self):
        t = HotnessTracker(half_life_s=0.1)
        for i in range(5):
            t.touch("p", i * 0.01)
        assert t.is_hot("p", 0.05)
        assert not t.is_hot("p", 5.0)

    def test_forget_drops_history(self):
        t = HotnessTracker()
        t.touch("p", 0.0)
        t.forget("p")
        assert t.score("p", 0.0) == 0.0
        assert len(t) == 0
        t.forget("p")  # idempotent

    def test_capacity_bound_evicts_oldest_inserted(self):
        t = HotnessTracker(half_life_s=1.0, max_pages=2)
        t.touch("a", 0.0)
        t.touch("b", 0.0)
        t.touch("c", 0.0)
        assert len(t) == 2
        assert t.score("a", 0.0) == 0.0
        assert t.score("c", 0.0) == pytest.approx(1.0)


class TestValidation:
    def test_half_life_must_be_positive(self):
        with pytest.raises(ValueError, match="half_life_s"):
            HotnessTracker(half_life_s=0.0)

    def test_max_pages_must_be_positive(self):
        with pytest.raises(ValueError, match="max_pages"):
            HotnessTracker(max_pages=0)
