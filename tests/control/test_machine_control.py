"""Machine wiring for the control plane, and its digest discipline.

Two invariants matter here: with the controller *off* nothing about a
run changes (every pre-existing golden digest stays byte-identical,
because no ``control`` key is even present in the result), and with the
controller *on* the run is deterministic enough to pin its own digest.
"""

import hashlib
import json

import pytest

from repro.control.controller import ControlConfig, ControlPlane
from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.tiers.spec import parse_tier_specs
from repro.vm.faults import VmConfigurationError
from repro.workloads import Thrasher

#: SHA-256 of canonical JSON of RunResult.as_dict() for the autotuned
#: two-tier thrasher below.  Unlike the controller-off goldens this one
#: includes the ``control`` counters; a mismatch means either the
#: simulation or the control policy changed behaviour.
GOLDEN_CONTROLLED_THRASHER = (
    "cee1e6859d018be154d9026d0a02e772e7f9f445fd6243ff93b8e957d90c0fd5"
)


def controlled_machine(scale=0.08, control=None, cycles=3, span=2,
                       **config_kwargs):
    memory = mbytes(6 * scale)
    workload = Thrasher(int(memory * span), cycles=cycles, write=True)
    config = MachineConfig(
        memory_bytes=memory,
        tiers=parse_tier_specs("two-tier"),
        control=control,
        **config_kwargs,
    )
    return Machine(config, workload.build()), workload


def small_space():
    return Thrasher(mbytes(0.25), cycles=1).build()


def run_digest(machine, workload):
    result = SimulationEngine(machine).run(workload.references())
    canonical = json.dumps(result.as_dict(), sort_keys=True,
                           separators=(",", ":"))
    return result, hashlib.sha256(canonical.encode()).hexdigest()


class TestWiring:
    def test_default_machine_has_no_control_machinery(self):
        config = MachineConfig(memory_bytes=mbytes(0.5))
        machine = Machine(config, small_space())
        assert machine.control is None
        assert machine.telemetry is None

    def test_explicit_tiers_build_telemetry_but_no_controller(self):
        machine, _ = controlled_machine(control=None)
        assert machine.control is None
        assert machine.telemetry is not None

    def test_control_config_builds_the_plane(self):
        machine, _ = controlled_machine(control=ControlConfig())
        assert isinstance(machine.control, ControlPlane)
        assert machine.telemetry is machine.control.telemetry
        for tier in machine.chain.tiers:
            assert tier.cache.hot_filter == machine.control.hot_filter
            assert tier.cache.hot_skip_budget == 8

    def test_hotness_off_leaves_demotion_path_untouched(self):
        machine, _ = controlled_machine(
            control=ControlConfig(hotness=False)
        )
        assert machine.control.hotness is None
        for tier in machine.chain.tiers:
            assert tier.cache.hot_filter is None

    def test_control_requires_the_compression_cache(self):
        config = MachineConfig(
            memory_bytes=mbytes(0.5),
            compression_cache=False,
            control=ControlConfig(),
        )
        with pytest.raises(VmConfigurationError,
                           match="requires the compression cache"):
            Machine(config, small_space())

    def test_control_requires_the_monolithic_vm(self):
        config = MachineConfig(
            memory_bytes=mbytes(0.5),
            vm_architecture="external-pager",
            control=ControlConfig(),
        )
        with pytest.raises(VmConfigurationError,
                           match="monolithic VM architecture"):
            Machine(config, small_space())

    def test_baseline_variant_strips_the_controller(self):
        config = MachineConfig(memory_bytes=mbytes(0.5),
                               control=ControlConfig())
        baseline = config.baseline()
        assert baseline.control is None
        assert baseline.compression_cache is False

    def test_reset_measurement_rebinds_the_metrics(self):
        machine, workload = controlled_machine(control=ControlConfig())
        SimulationEngine(machine).run(workload.references())
        machine.reset_measurement()
        assert machine.control.metrics is machine.vm.metrics
        assert machine.control.metrics.faults.total == 0


class TestDigestDiscipline:
    def test_controller_off_reports_no_control_key(self):
        """The goldens' shield: with ``control=None`` the result dict is
        exactly what it was before the control plane existed."""
        machine, workload = controlled_machine(control=None)
        result = SimulationEngine(machine).run(workload.references())
        assert "control" not in result.as_dict()

    def test_controlled_run_is_deterministic_and_pinned(self):
        results = []
        digests = []
        for _ in range(2):
            machine, workload = controlled_machine(
                control=ControlConfig(seed=0), span=3
            )
            result, digest = run_digest(machine, workload)
            results.append(result)
            digests.append(digest)
        assert digests[0] == digests[1]
        assert digests[0] == GOLDEN_CONTROLLED_THRASHER
        control = results[0].as_dict()["control"]
        assert control["ticks"] > 0
        # The thrasher loops over three times memory: the miss stream
        # runs hot and the controller must actually act on it.
        assert control["actions"] > 0
        assert control["grows"] > 0

    def test_control_time_is_charged_to_its_own_category(self):
        machine, workload = controlled_machine(control=ControlConfig())
        result = SimulationEngine(machine).run(workload.references())
        ticks = result.as_dict()["control"]["ticks"]
        charged = result.time_breakdown.get("control", 0.0)
        assert charged == pytest.approx(
            ticks * machine.config.control.tick_cost_s
        )
