"""WindowedStats: both modes, retirement accounting, edge cases."""

import pytest

from repro.control.windowed import WindowedStats


class TestEventMode:
    def test_counts_and_totals_accumulate(self):
        w = WindowedStats(4)
        w.record(bad=1)
        w.record(bad=0)
        w.record(bad=1)
        assert w.count == 3
        assert w.total("bad") == 2
        assert w.fraction("bad") == pytest.approx(2 / 3)

    def test_ring_retires_oldest_event(self):
        """Exactly the ``deque(maxlen=n)`` the degradation controller
        always used: the aggregate covers the last ``capacity`` events,
        no more, no fewer."""
        w = WindowedStats(3)
        for bad in (1, 1, 1, 0, 0, 0):
            w.record(bad=bad)
        assert w.count == 3
        assert w.total("bad") == 0

    def test_count_is_stable_once_full(self):
        """Regression: retiring a slot must not shrink the live count
        below capacity (each record retires one and adds one)."""
        w = WindowedStats(2)
        for _ in range(10):
            w.record(x=1)
            assert w.count <= 2
        assert w.count == 2
        assert w.total("x") == 2

    def test_clear_restarts_empty(self):
        w = WindowedStats(4)
        w.record(bad=1)
        w.clear()
        assert w.count == 0
        assert w.total("bad") == 0.0
        assert w.fraction("bad") == 0.0

    def test_advance_is_time_mode_only(self):
        with pytest.raises(ValueError, match="time mode"):
            WindowedStats(4).advance(1.0)

    def test_span_is_none_without_width(self):
        assert WindowedStats(4).span_seconds is None

    def test_snapshot_copies_totals(self):
        w = WindowedStats(4)
        w.record(a=2, b=3)
        snap = w.snapshot()
        assert snap == {"events": 1.0, "a": 2, "b": 3}
        snap["a"] = 99
        assert w.total("a") == 2


class TestTimeMode:
    def test_buckets_by_virtual_time(self):
        w = WindowedStats(4, width_s=1.0)
        w.record(0.1, hits=1)
        w.record(0.9, hits=1)  # same bucket
        w.record(1.5, hits=1)  # next bucket
        assert w.count == 3
        assert w.total("hits") == 3
        assert w.span_seconds == 4.0

    def test_old_buckets_expire_as_clock_moves(self):
        w = WindowedStats(2, width_s=1.0)
        w.record(0.0, hits=1)
        w.record(1.0, hits=10)
        w.record(2.0, hits=100)  # bucket 0 retires
        assert w.total("hits") == 110

    def test_clock_jump_past_window_clears_everything(self):
        w = WindowedStats(4, width_s=1.0)
        w.record(0.0, hits=1)
        w.record(100.0, hits=5)
        assert w.count == 1
        assert w.total("hits") == 5

    def test_advance_expires_without_recording(self):
        w = WindowedStats(2, width_s=1.0)
        w.record(0.0, hits=7)
        w.advance(0.5)
        assert w.total("hits") == 7
        w.advance(2.0)  # bucket 0 now out of the 2-bucket window
        assert w.total("hits") == 0
        assert w.count == 0

    def test_advance_far_ahead_clears(self):
        w = WindowedStats(4, width_s=0.5)
        w.record(0.0, hits=3)
        w.advance(1000.0)
        assert w.count == 0

    def test_advance_before_any_record_is_a_noop(self):
        w = WindowedStats(4, width_s=1.0)
        w.advance(5.0)
        assert w.count == 0

    def test_ratio(self):
        w = WindowedStats(4, width_s=1.0)
        w.record(0.0, out=30, inn=100)
        assert w.ratio("out", "inn") == pytest.approx(0.3)
        assert w.ratio("out", "never") == 0.0


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            WindowedStats(0)

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError, match="width_s"):
            WindowedStats(4, width_s=0.0)
