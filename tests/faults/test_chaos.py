"""Chaos integration: whole workloads survive standard fault plans.

Every run uses ``paranoid=True``, so each decompressed page is verified
against the simulator's ground-truth content — completion of a paranoid
run IS the integrity assertion: no injected fault ever surfaced corrupt
bytes to the VM.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.faults.plan import FaultPlan
from repro.mem.page import mbytes
from repro.sim.engine import run_workload
from repro.sim.machine import Machine, MachineConfig
from repro.workloads import CompareWorkload, Thrasher

PLAN_DIR = Path(__file__).parents[2] / "experiments" / "fault_plans"

SCALE = 0.05


def chaos_run(workload_factory, plan, drain=True):
    workload = workload_factory()
    machine = Machine(
        MachineConfig(memory_bytes=mbytes(6 * SCALE), fault_plan=plan,
                      paranoid=True),
        workload.build(),
    )
    return run_workload(machine, workload.references(), drain=drain)


def compare_factory():
    return CompareWorkload(mbytes(24 * SCALE), round_trips=2)


def thrasher_factory():
    memory = mbytes(6 * SCALE)
    return Thrasher(int(memory * 2.5), cycles=3, write=True)


def digest(result):
    canonical = json.dumps(result.as_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class TestChaosMatrix:
    @pytest.mark.parametrize("plan_name", [
        "disk-flaky", "corrupt-fragments", "compressor-crash",
    ])
    @pytest.mark.parametrize("factory", [
        compare_factory, thrasher_factory,
    ], ids=["compare", "thrasher"])
    def test_completes_with_integrity(self, plan_name, factory):
        plan = FaultPlan.from_json(PLAN_DIR / f"{plan_name}.json")
        result = chaos_run(factory, plan)
        # Paranoid mode verified every decompression; reaching here means
        # page contents stayed correct throughout.
        assert result.metrics_snapshot["faults"]["total"] > 0
        assert result.fault_counters is not None

    def test_disk_flaky_injects_and_recovers(self):
        plan = FaultPlan.from_json(PLAN_DIR / "disk-flaky.json")
        counters = chaos_run(compare_factory, plan).fault_counters
        assert counters["injected_faults"] > 0
        assert counters["device_read_errors"] > 0
        assert counters["retries"] > 0
        assert counters["recovered_operations"] > 0
        assert counters["retry_backoff_seconds"] > 0

    def test_corrupt_fragments_detected_by_crc(self):
        plan = FaultPlan.from_json(PLAN_DIR / "corrupt-fragments.json")
        counters = chaos_run(compare_factory, plan).fault_counters
        assert counters["fragment_corruptions"] > 0
        assert counters["crc_checks"] > 0
        assert counters["crc_failures"] > 0
        # Transient corruption recovers by re-read; sticky corruption
        # falls through to the authoritative copy.
        assert counters["recovered_operations"] > 0

    def test_compressor_crash_degrades_gracefully(self):
        plan = FaultPlan.from_json(PLAN_DIR / "compressor-crash.json")
        counters = chaos_run(thrasher_factory, plan).fault_counters
        assert counters["compressor_crashes"] > 0
        assert counters["compressor_expansions"] > 0
        assert counters["degradation_entries"] > 0
        assert counters["bypassed_evictions"] > 0

    def test_same_seed_same_schedule_same_digest(self):
        plan = FaultPlan.from_json(PLAN_DIR / "corrupt-fragments.json")
        first = chaos_run(compare_factory, plan)
        second = chaos_run(compare_factory, plan)
        assert digest(first) == digest(second)
        assert first.fault_counters == second.fault_counters

    def test_different_seed_different_schedule(self):
        base = FaultPlan.from_json(PLAN_DIR / "corrupt-fragments.json")
        doc = base.to_dict()
        doc["seed"] = base.seed + 1
        reseeded = FaultPlan.from_dict(doc)
        first = chaos_run(compare_factory, base)
        second = chaos_run(compare_factory, reseeded)
        assert first.fault_counters != second.fault_counters


class TestZeroOverheadDefault:
    def test_no_plan_reports_no_resilience_key(self):
        result = chaos_run(thrasher_factory, plan=None)
        assert result.fault_counters is None
        assert "resilience" not in result.as_dict()

    def test_inert_plan_counts_nothing_but_checks(self):
        result = chaos_run(thrasher_factory, FaultPlan())
        counters = result.fault_counters
        assert counters["injected_faults"] == 0
        assert counters["crc_failures"] == 0
        # The always-on CRC path is the only work the layer does.
        assert counters["crc_checks"] >= 0

    def test_inert_plan_matches_no_plan_simulation(self):
        """An all-zero-rate plan must not perturb simulated results."""
        plain = chaos_run(thrasher_factory, plan=None)
        inert = chaos_run(thrasher_factory, FaultPlan())
        plain_dict = plain.as_dict()
        inert_dict = inert.as_dict()
        inert_dict.pop("resilience")
        assert plain_dict == inert_dict
