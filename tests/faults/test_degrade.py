"""DegradationController: the NORMAL ⇄ DEGRADED state machine."""

from repro.faults.degrade import DegradationController, ResilienceCounters
from repro.faults.plan import DegradationConfig


def make_controller(window=8, threshold=0.5, min_events=4, cooldown=3):
    counters = ResilienceCounters()
    controller = DegradationController(
        DegradationConfig(window=window, fault_threshold=threshold,
                          min_events=min_events,
                          cooldown_evictions=cooldown),
        counters,
    )
    return controller, counters


class TestDegradation:
    def test_starts_normal(self):
        controller, _ = make_controller()
        assert not controller.degraded
        assert controller.compression_allowed

    def test_needs_min_events(self):
        controller, _ = make_controller(min_events=4)
        for _ in range(3):
            controller.record(False)
        assert not controller.degraded  # 3 bad events, but < min_events

    def test_enters_degraded_at_threshold(self):
        controller, counters = make_controller(min_events=4)
        for _ in range(4):
            controller.record(False)
        assert controller.degraded
        assert counters.degradation_entries == 1

    def test_healthy_stream_never_degrades(self):
        controller, counters = make_controller()
        for _ in range(100):
            controller.record(True)
        assert not controller.degraded
        assert counters.degradation_entries == 0

    def test_cooldown_re_enables(self):
        controller, counters = make_controller(cooldown=3)
        for _ in range(4):
            controller.record(False)
        assert controller.degraded
        for n in range(3):
            assert controller.degraded
            controller.note_bypassed_eviction()
        assert not controller.degraded
        assert counters.bypassed_evictions == 3
        assert counters.degradation_exits == 1

    def test_window_cleared_on_re_enable(self):
        controller, counters = make_controller(min_events=4, cooldown=1)
        for _ in range(4):
            controller.record(False)
        controller.note_bypassed_eviction()  # back to NORMAL
        # Old failures are forgotten: it takes min_events fresh ones.
        controller.record(False)
        assert not controller.degraded
        for _ in range(3):
            controller.record(False)
        assert controller.degraded
        assert counters.degradation_entries == 2

    def test_events_ignored_while_degraded(self):
        controller, _ = make_controller(cooldown=5)
        for _ in range(4):
            controller.record(False)
        for _ in range(10):
            controller.record(True)  # ignored: window restarts on exit
        assert controller.degraded

    def test_note_bypassed_noop_when_normal(self):
        controller, counters = make_controller()
        controller.note_bypassed_eviction()
        assert counters.bypassed_evictions == 0
