"""DegradationController: the NORMAL ⇄ DEGRADED state machine."""

from repro.faults.degrade import DegradationController, ResilienceCounters
from repro.faults.plan import DegradationConfig


def make_controller(window=8, threshold=0.5, min_events=4, cooldown=3):
    counters = ResilienceCounters()
    controller = DegradationController(
        DegradationConfig(window=window, fault_threshold=threshold,
                          min_events=min_events,
                          cooldown_evictions=cooldown),
        counters,
    )
    return controller, counters


class TestDegradation:
    def test_starts_normal(self):
        controller, _ = make_controller()
        assert not controller.degraded
        assert controller.compression_allowed

    def test_needs_min_events(self):
        controller, _ = make_controller(min_events=4)
        for _ in range(3):
            controller.record(False)
        assert not controller.degraded  # 3 bad events, but < min_events

    def test_enters_degraded_at_threshold(self):
        controller, counters = make_controller(min_events=4)
        for _ in range(4):
            controller.record(False)
        assert controller.degraded
        assert counters.degradation_entries == 1

    def test_healthy_stream_never_degrades(self):
        controller, counters = make_controller()
        for _ in range(100):
            controller.record(True)
        assert not controller.degraded
        assert counters.degradation_entries == 0

    def test_cooldown_re_enables(self):
        controller, counters = make_controller(cooldown=3)
        for _ in range(4):
            controller.record(False)
        assert controller.degraded
        for n in range(3):
            assert controller.degraded
            controller.note_bypassed_eviction()
        assert not controller.degraded
        assert counters.bypassed_evictions == 3
        assert counters.degradation_exits == 1

    def test_window_cleared_on_re_enable(self):
        controller, counters = make_controller(min_events=4, cooldown=1)
        for _ in range(4):
            controller.record(False)
        controller.note_bypassed_eviction()  # back to NORMAL
        # Old failures are forgotten: it takes min_events fresh ones.
        controller.record(False)
        assert not controller.degraded
        for _ in range(3):
            controller.record(False)
        assert controller.degraded
        assert counters.degradation_entries == 2

    def test_events_ignored_while_degraded(self):
        controller, _ = make_controller(cooldown=5)
        for _ in range(4):
            controller.record(False)
        for _ in range(10):
            controller.record(True)  # ignored: window restarts on exit
        assert controller.degraded

    def test_note_bypassed_noop_when_normal(self):
        controller, counters = make_controller()
        controller.note_bypassed_eviction()
        assert counters.bypassed_evictions == 0


class TestAlternatingFaultBursts:
    """Flapping behaviour: NORMAL ⇄ DEGRADED cycles respect the cooldown.

    A bursty fault source (a bad batch of pages, then a clean stretch,
    then another bad batch) must not be able to shorten or skip the
    cooldown, and every re-entry must demand ``min_events`` fresh
    observations — the controller may flap, but only at the configured
    cadence.
    """

    def test_each_burst_pays_full_cooldown(self):
        controller, counters = make_controller(
            min_events=4, cooldown=5
        )
        for cycle in range(3):
            for _ in range(4):
                controller.record(False)
            assert controller.degraded
            assert counters.degradation_entries == cycle + 1
            # Mid-cooldown faults must not extend or restart it...
            for _ in range(2):
                controller.note_bypassed_eviction()
                controller.record(False)  # ignored while degraded
            # ...and the remaining ticks still count down to exactly 0.
            for _ in range(3):
                assert controller.degraded
                controller.note_bypassed_eviction()
            assert not controller.degraded
            assert counters.degradation_exits == cycle + 1
        assert counters.bypassed_evictions == 15  # 3 cycles x cooldown 5

    def test_clean_stretch_between_bursts_resets_the_window(self):
        controller, counters = make_controller(
            window=8, threshold=0.5, min_events=4, cooldown=2
        )
        # Burst, cooldown, then a clean stretch long enough to push the
        # burst's failures out of the (fresh) window.
        for _ in range(4):
            controller.record(False)
        controller.note_bypassed_eviction()
        controller.note_bypassed_eviction()
        assert not controller.degraded
        for _ in range(8):
            controller.record(True)
        # A sub-threshold trickle now cannot re-trigger: 3 bad out of
        # the 8-wide window is under the 0.5 threshold.
        for _ in range(3):
            controller.record(False)
        assert not controller.degraded
        assert counters.degradation_entries == 1
        # A full fresh burst still can.
        for _ in range(4):
            controller.record(False)
        assert controller.degraded
        assert counters.degradation_entries == 2

    def test_flapping_counters_stay_paired(self):
        controller, counters = make_controller(min_events=4, cooldown=1)
        for cycle in range(10):
            for _ in range(4):
                controller.record(False)
            controller.note_bypassed_eviction()
        assert counters.degradation_entries == 10
        assert counters.degradation_exits == 10
        assert counters.bypassed_evictions == 10
        assert not controller.degraded
