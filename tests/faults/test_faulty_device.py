"""FaultyDevice: deterministic injection over a real device model."""

import pytest

from repro.faults.degrade import ResilienceCounters
from repro.faults.device import FaultyDevice
from repro.faults.errors import PermanentIOError, TransientIOError
from repro.faults.plan import FaultPlan
from repro.storage.disk import DiskModel


def make_device(plan_doc, seed=3):
    plan = FaultPlan.from_dict(dict(plan_doc, seed=seed))
    counters = ResilienceCounters()
    inner = DiskModel.rz57()
    return FaultyDevice(inner, plan.build(counters)), inner, counters


class TestFaultyDevice:
    def test_no_faults_is_passthrough(self):
        device, inner, counters = make_device({})
        seconds = device.read(4096)
        assert seconds == pytest.approx(
            DiskModel.rz57()._transfer_seconds(4096, False)
        )
        assert inner.counters.reads == 1
        assert counters.injected_faults == 0

    def test_read_errors_injected_and_counted(self):
        device, inner, counters = make_device(
            {"device": {"read_error_rate": 1.0}}
        )
        with pytest.raises(TransientIOError) as excinfo:
            device.read(4096)
        # The failed attempt consumed virtual time but never touched the
        # inner device's (successful-transfer) counters.
        assert 0.0 <= excinfo.value.seconds <= inner._transfer_seconds(
            4096, False
        )
        assert inner.counters.reads == 0
        assert counters.device_read_errors == 1

    def test_permanent_fraction(self):
        device, _, _ = make_device(
            {"device": {"write_error_rate": 1.0, "permanent_fraction": 1.0}}
        )
        with pytest.raises(PermanentIOError):
            device.write(4096)

    def test_latency_spike_added_to_successful_transfer(self):
        device, inner, counters = make_device(
            {"device": {"latency_spike_rate": 1.0,
                        "latency_spike_ms": 25.0}}
        )
        plain = DiskModel.rz57()._transfer_seconds(4096, False)
        assert device.read(4096) == pytest.approx(plain + 0.025)
        assert inner.counters.reads == 1  # the transfer itself succeeded
        assert counters.latency_spikes == 1
        assert counters.latency_spike_seconds == pytest.approx(0.025)

    def test_max_faults_cap(self):
        device, _, counters = make_device(
            {"device": {"read_error_rate": 1.0, "max_faults": 2}}
        )
        for _ in range(2):
            with pytest.raises(TransientIOError):
                device.read(4096)
        device.read(4096)  # cap reached: transfers succeed again
        assert counters.device_read_errors == 2

    def test_same_seed_same_schedule(self):
        doc = {"device": {"read_error_rate": 0.4,
                          "latency_spike_rate": 0.2,
                          "latency_spike_ms": 10.0}}

        def schedule():
            device, _, _ = make_device(doc, seed=11)
            fates = []
            for _ in range(50):
                try:
                    device.read(4096)
                    fates.append("ok")
                except TransientIOError:
                    fates.append("err")
            return fates

        assert schedule() == schedule()

    def test_counters_property_delegates(self):
        device, inner, _ = make_device({})
        assert device.counters is inner.counters
