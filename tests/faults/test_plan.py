"""FaultPlan: parsing, validation, round-trips."""

import json

import pytest

from repro.faults.plan import (
    CompressorFaultConfig,
    DeviceFaultConfig,
    FaultPlan,
    FaultPlanError,
    FragmentFaultConfig,
    LfsFaultConfig,
    RetryConfig,
)


class TestValidation:
    def test_defaults_are_inert(self):
        plan = FaultPlan()
        assert not plan.device.enabled
        assert not plan.fragments.enabled
        assert not plan.compressor.enabled

    def test_rate_out_of_range(self):
        with pytest.raises(FaultPlanError, match="read_error_rate"):
            DeviceFaultConfig(read_error_rate=1.5)
        with pytest.raises(FaultPlanError, match="corrupt_read_rate"):
            FragmentFaultConfig(corrupt_read_rate=-0.1)

    def test_rate_wrong_type(self):
        with pytest.raises(FaultPlanError, match="crash_rate"):
            CompressorFaultConfig(crash_rate="often")

    def test_crash_plus_expand_bounded(self):
        with pytest.raises(FaultPlanError, match="must not exceed 1"):
            CompressorFaultConfig(crash_rate=0.7, expand_rate=0.7)

    def test_retry_attempts_positive(self):
        with pytest.raises(FaultPlanError, match="max_attempts"):
            RetryConfig(max_attempts=0)

    def test_seed_must_be_int(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan(seed="zeppelin")

    def test_max_faults_validation(self):
        with pytest.raises(FaultPlanError, match="max_faults"):
            DeviceFaultConfig(max_faults=-1)
        assert DeviceFaultConfig(max_faults=None).max_faults is None

    def test_lfs_rates_validated(self):
        with pytest.raises(FaultPlanError, match="lfs.crash_rate"):
            LfsFaultConfig(crash_rate=2.0)
        with pytest.raises(FaultPlanError, match="lfs.torn_fraction"):
            LfsFaultConfig(torn_fraction=-0.5)
        with pytest.raises(FaultPlanError, match="lfs.checkpoint_lost_rate"):
            LfsFaultConfig(checkpoint_lost_rate=1.1)
        assert not LfsFaultConfig().enabled
        assert LfsFaultConfig(crash_rate=0.1).enabled
        assert LfsFaultConfig(checkpoint_lost_rate=0.1).enabled


class TestFromDict:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"devcie": {}})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown keys in section"):
            FaultPlan.from_dict({"device": {"read_eror_rate": 0.1}})

    def test_comment_keys_allowed(self):
        plan = FaultPlan.from_dict({
            "comment": "top",
            "device": {"comment": "nested", "read_error_rate": 0.5},
        })
        assert plan.device.read_error_rate == 0.5

    def test_section_must_be_object(self):
        with pytest.raises(FaultPlanError, match="must be an object"):
            FaultPlan.from_dict({"device": 3})

    def test_round_trip(self):
        plan = FaultPlan.from_dict({
            "seed": 42,
            "device": {"read_error_rate": 0.1, "latency_spike_rate": 0.2,
                       "latency_spike_ms": 5.0},
            "fragments": {"corrupt_read_rate": 0.05,
                          "sticky_fraction": 0.5},
            "compressor": {"crash_rate": 0.01},
            "lfs": {"crash_rate": 0.02, "torn_fraction": 0.5,
                    "checkpoint_lost_rate": 0.1, "max_faults": 4},
            "retry": {"max_attempts": 3},
            "degradation": {"window": 8},
        })
        assert plan.lfs.crash_rate == 0.02
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_dict_is_inert_plan(self):
        plan = FaultPlan.from_dict({})
        assert plan == FaultPlan()


class TestFromJson:
    def test_load(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 9,
                                    "device": {"write_error_rate": 0.3}}))
        plan = FaultPlan.from_json(path)
        assert plan.seed == 9
        assert plan.device.write_error_rate == 0.3

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{nope")
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json(path)

    def test_shipped_plans_parse(self):
        from pathlib import Path

        plans = Path(__file__).parents[2] / "experiments" / "fault_plans"
        names = sorted(p.name for p in plans.glob("*.json"))
        assert names == ["compressor-crash.json", "corrupt-fragments.json",
                         "disk-flaky.json"]
        for path in plans.glob("*.json"):
            FaultPlan.from_json(path)


class TestRetryPolicy:
    def test_ms_to_seconds(self):
        plan = FaultPlan.from_dict({
            "retry": {"max_attempts": 3, "base_backoff_ms": 2.0,
                      "multiplier": 2.0, "max_backoff_ms": 6.0},
        })
        policy = plan.retry_policy()
        assert policy.max_attempts == 3
        assert policy.backoff_seconds(0) == pytest.approx(0.002)
        assert policy.backoff_seconds(1) == pytest.approx(0.004)
        assert policy.backoff_seconds(5) == pytest.approx(0.006)  # capped
