"""ResilientIO: bounded retry, backoff charging, fail-fast."""

import pytest

from repro.faults.degrade import ResilienceCounters
from repro.faults.errors import (
    IORetriesExhausted,
    PermanentIOError,
    TransientIOError,
)
from repro.faults.retry import ResilientIO, RetryPolicy
from repro.sim.ledger import Ledger, TimeCategory


def make_io(max_attempts=3, base=0.001, mult=2.0, cap=0.004):
    ledger = Ledger()
    counters = ResilienceCounters()
    io = ResilientIO(
        RetryPolicy(max_attempts=max_attempts, base_backoff_s=base,
                    multiplier=mult, max_backoff_s=cap),
        ledger, counters,
    )
    return io, ledger, counters


class FlakyOp:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures, error=None):
        self.failures = failures
        self.calls = 0
        self.error = error or TransientIOError("read", 4096, seconds=0.01)

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestRetry:
    def test_success_first_try(self):
        io, ledger, counters = make_io()
        assert io.call(lambda: 7, TimeCategory.IO_READ) == 7
        assert counters.retries == 0
        assert ledger.total() == 0.0

    def test_recovers_after_transient_failures(self):
        io, ledger, counters = make_io()
        op = FlakyOp(failures=2)
        assert io.call(op, TimeCategory.IO_READ) == "ok"
        assert op.calls == 3
        assert counters.retries == 2
        assert counters.recovered_operations == 1
        assert counters.retries_exhausted == 0
        # Two failed attempts charged to the caller's category...
        assert ledger.total(TimeCategory.IO_READ) == pytest.approx(0.02)
        # ...and exponential backoff (0.001 + 0.002) to RETRY_BACKOFF.
        assert ledger.total(TimeCategory.RETRY_BACKOFF) == pytest.approx(
            0.003
        )
        assert counters.retry_backoff_seconds == pytest.approx(0.003)

    def test_exhaustion_raises_with_last_error(self):
        io, _, counters = make_io(max_attempts=3)
        op = FlakyOp(failures=99)
        with pytest.raises(IORetriesExhausted) as excinfo:
            io.call(op, TimeCategory.IO_READ)
        assert op.calls == 3
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransientIOError)
        assert counters.retries_exhausted == 1
        assert counters.recovered_operations == 0

    def test_permanent_error_fails_fast(self):
        io, ledger, counters = make_io(max_attempts=5)
        op = FlakyOp(
            failures=99,
            error=PermanentIOError("write", 4096, seconds=0.02),
        )
        with pytest.raises(IORetriesExhausted):
            io.call(op, TimeCategory.IO_WRITE)
        assert op.calls == 1  # no point retrying
        assert counters.retries == 0
        assert ledger.total(TimeCategory.IO_WRITE) == pytest.approx(0.02)
        assert ledger.total(TimeCategory.RETRY_BACKOFF) == 0.0

    def test_backoff_capped(self):
        io, ledger, _ = make_io(max_attempts=5, base=0.001, mult=10.0,
                                cap=0.002)
        op = FlakyOp(failures=3)
        io.call(op, TimeCategory.IO_READ)
        # Backoffs: 0.001, then capped at 0.002 twice.
        assert ledger.total(TimeCategory.RETRY_BACKOFF) == pytest.approx(
            0.005
        )

    def test_try_call_returns_none_on_exhaustion(self):
        io, _, _ = make_io(max_attempts=2)
        assert io.try_call(FlakyOp(failures=99), TimeCategory.IO_READ) is None
        assert io.try_call(lambda: 5, TimeCategory.IO_READ) == 5

    def test_non_retryable_exception_propagates(self):
        io, _, _ = make_io()

        def boom():
            raise RuntimeError("not an I/O fault")

        with pytest.raises(RuntimeError):
            io.call(boom, TimeCategory.IO_READ)
