"""PageContent: overlay writes, versioning, materialization."""

import pytest

from repro.mem.content import PageContent, zero_page

from ..conftest import PAGE


class TestConstruction:
    def test_defaults_to_zero_page(self):
        content = PageContent()
        assert content.materialize() == bytes(PAGE)
        assert content.version == 0

    def test_custom_data(self):
        data = bytes(range(256)) * 16
        content = PageContent(data)
        assert content.materialize() == data

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            PageContent(b"short")

    def test_zero_page_shared(self):
        assert zero_page() is zero_page()
        assert len(zero_page(1024)) == 1024


class TestWordOps:
    def test_store_and_load(self):
        content = PageContent()
        content.store_word(8, 0xDEADBEEF)
        assert content.load_word(8) == 0xDEADBEEF
        assert content.version == 1

    def test_store_visible_in_materialize(self):
        content = PageContent()
        content.store_word(0, 0x01020304)
        data = content.materialize()
        assert data[:4] == bytes([4, 3, 2, 1])  # little-endian

    def test_load_from_base(self):
        data = bytearray(PAGE)
        data[0:4] = (42).to_bytes(4, "little")
        content = PageContent(bytes(data))
        assert content.load_word(0) == 42

    def test_version_bumps_per_store(self):
        content = PageContent()
        for i in range(5):
            content.store_word(4 * i, i)
        assert content.version == 5

    def test_unaligned_rejected(self):
        content = PageContent()
        with pytest.raises(ValueError):
            content.store_word(3, 1)
        with pytest.raises(ValueError):
            content.load_word(2)

    def test_out_of_range_rejected(self):
        content = PageContent()
        with pytest.raises(ValueError):
            content.store_word(PAGE, 1)
        with pytest.raises(ValueError):
            content.store_word(-4, 1)

    def test_value_masked_to_32_bits(self):
        content = PageContent()
        content.store_word(0, 0x1_0000_0002)
        assert content.load_word(0) == 2


class TestReplace:
    def test_replace_bumps_version(self):
        content = PageContent()
        content.replace(b"\x07" * PAGE)
        assert content.version == 1
        assert content.materialize() == b"\x07" * PAGE

    def test_replace_clears_overlay(self):
        content = PageContent()
        content.store_word(0, 99)
        content.replace(bytes(PAGE))
        assert content.load_word(0) == 0

    def test_replace_wrong_size(self):
        with pytest.raises(ValueError):
            PageContent().replace(b"nope")


class TestMaterializeCaching:
    def test_repeated_materialize_is_stable(self):
        content = PageContent()
        content.store_word(12, 7)
        first = content.materialize()
        second = content.materialize()
        assert first is second

    def test_overlay_folds_once(self):
        content = PageContent()
        content.store_word(0, 1)
        content.materialize()
        content.store_word(4, 2)
        data = content.materialize()
        assert data[0] == 1 and data[4] == 2

    def test_len(self):
        assert len(PageContent()) == PAGE


class TestFingerprint:
    def test_matches_sampler_digest(self):
        import hashlib

        content = PageContent()
        content.store_word(16, 0xCAFEF00D)
        expected = hashlib.blake2b(
            content.materialize(), digest_size=16
        ).digest()
        assert content.fingerprint() == expected

    def test_cached_until_written(self):
        content = PageContent()
        content.store_word(0, 1)
        first = content.fingerprint()
        assert content.fingerprint() is first  # same object, no re-hash
        content.store_word(0, 2)
        second = content.fingerprint()
        assert second != first

    def test_replace_invalidates(self):
        content = PageContent()
        before = content.fingerprint()
        content.replace(b"\x09" * PAGE)
        assert content.fingerprint() != before

    def test_same_bytes_same_fingerprint(self):
        a = PageContent()
        b = PageContent()
        # Different write histories converging on identical bytes must
        # agree: the sampler keys its memo on these digests.
        a.store_word(0, 5)
        a.store_word(0, 0)
        assert a.fingerprint() == b.fingerprint()
