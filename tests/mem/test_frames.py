"""FramePool ownership accounting."""

import pytest

from repro.mem.frames import FrameOwner, FramePool, OutOfFramesError


class TestAllocation:
    def test_allocate_release_cycle(self):
        pool = FramePool(4)
        frame = pool.allocate(FrameOwner.VM)
        assert pool.owner_of(frame) == FrameOwner.VM
        assert pool.free_frames == 3
        pool.release(frame)
        assert pool.free_frames == 4

    def test_exhaustion_raises(self):
        pool = FramePool(2)
        pool.allocate(FrameOwner.VM)
        pool.allocate(FrameOwner.COMPRESSION)
        with pytest.raises(OutOfFramesError):
            pool.allocate(FrameOwner.VM)

    def test_frames_are_unique(self):
        pool = FramePool(16)
        frames = {pool.allocate(FrameOwner.VM) for _ in range(16)}
        assert len(frames) == 16

    def test_double_release_rejected(self):
        pool = FramePool(2)
        frame = pool.allocate(FrameOwner.VM)
        pool.release(frame)
        with pytest.raises(ValueError):
            pool.release(frame)

    def test_owner_of_unallocated_rejected(self):
        pool = FramePool(2)
        with pytest.raises(ValueError):
            pool.owner_of(0)

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            FramePool(0)


class TestAccounting:
    def test_split_tracks_owners(self):
        pool = FramePool(6)
        pool.allocate(FrameOwner.VM)
        pool.allocate(FrameOwner.VM)
        pool.allocate(FrameOwner.COMPRESSION)
        split = pool.split()
        assert split == {"vm": 2, "cc": 1, "fs": 0, "free": 3}

    def test_owned_by(self):
        pool = FramePool(3)
        pool.allocate(FrameOwner.FILE_CACHE)
        assert pool.owned_by(FrameOwner.FILE_CACHE) == 1
        assert pool.owned_by(FrameOwner.VM) == 0

    def test_release_updates_counts(self):
        pool = FramePool(3)
        frame = pool.allocate(FrameOwner.COMPRESSION)
        pool.release(frame)
        assert pool.owned_by(FrameOwner.COMPRESSION) == 0

    def test_allocated_set(self):
        pool = FramePool(3)
        a = pool.allocate(FrameOwner.VM)
        b = pool.allocate(FrameOwner.VM)
        assert pool.allocated_set() == {a, b}
        assert pool.allocated_frames == 2
