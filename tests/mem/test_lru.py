"""LRU list with age stamps."""

import pytest

from repro.mem.lru import LruList


class TestOrdering:
    def test_eviction_order_is_lru(self):
        lru = LruList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        lru.touch("c", 3.0)
        assert lru.evict() == "a"
        assert lru.evict() == "b"

    def test_touch_moves_to_hot_end(self):
        lru = LruList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        lru.touch("a", 3.0)
        assert lru.evict() == "b"

    def test_iteration_cold_to_hot(self):
        lru = LruList()
        for i, key in enumerate("xyz"):
            lru.touch(key, float(i))
        assert list(lru) == ["x", "y", "z"]


class TestAges:
    def test_coldest_age(self):
        lru = LruList()
        lru.touch("a", 10.0)
        lru.touch("b", 30.0)
        assert lru.coldest() == ("a", 10.0)
        assert lru.coldest_age(40.0) == pytest.approx(30.0)

    def test_empty_ages_are_none(self):
        lru = LruList()
        assert lru.coldest() is None
        assert lru.coldest_age(5.0) is None

    def test_last_touch(self):
        lru = LruList()
        lru.touch("a", 7.5)
        assert lru.last_touch("a") == 7.5


class TestMembership:
    def test_contains_and_len(self):
        lru = LruList()
        lru.touch("a", 0.0)
        assert "a" in lru
        assert "b" not in lru
        assert len(lru) == 1

    def test_remove(self):
        lru = LruList()
        lru.touch("a", 0.0)
        lru.remove("a")
        assert "a" not in lru
        with pytest.raises(KeyError):
            lru.remove("a")

    def test_discard_is_idempotent(self):
        lru = LruList()
        lru.touch("a", 0.0)
        lru.discard("a")
        lru.discard("a")
        assert len(lru) == 0

    def test_evict_empty_raises(self):
        with pytest.raises(KeyError):
            LruList().evict()
