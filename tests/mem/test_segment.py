"""Segments, address spaces, page tables."""

import pytest

from repro.mem.page import PageId, PageState, mbytes, pages_for_bytes
from repro.mem.pagetable import (
    CC_PTE_BYTES,
    STD_PTE_BYTES,
    page_table_overhead_bytes,
)
from repro.mem.segment import AddressSpace

from ..conftest import PAGE


class TestPageHelpers:
    def test_pages_for_bytes(self):
        assert pages_for_bytes(0) == 0
        assert pages_for_bytes(1) == 1
        assert pages_for_bytes(PAGE) == 1
        assert pages_for_bytes(PAGE + 1) == 2

    def test_pages_for_bytes_negative(self):
        with pytest.raises(ValueError):
            pages_for_bytes(-1)

    def test_mbytes(self):
        assert mbytes(1) == 1024 * 1024
        assert mbytes(0.5) == 512 * 1024


class TestSegments:
    def test_lazy_entries(self):
        space = AddressSpace()
        segment = space.add_segment("heap", 100)
        assert segment.touched_pages == 0
        segment.entry(5)
        assert segment.touched_pages == 1

    def test_entry_is_stable(self):
        space = AddressSpace()
        segment = space.add_segment("heap", 10)
        assert segment.entry(3) is segment.entry(3)

    def test_content_factory(self):
        space = AddressSpace()
        segment = space.add_segment(
            "data", 4, content_factory=lambda n: bytes([n]) * PAGE
        )
        assert segment.entry(2).content.materialize() == bytes([2]) * PAGE

    def test_bad_factory_length_rejected(self):
        space = AddressSpace()
        segment = space.add_segment("bad", 4, content_factory=lambda n: b"x")
        with pytest.raises(ValueError):
            segment.entry(0)

    def test_out_of_range_page(self):
        space = AddressSpace()
        segment = space.add_segment("heap", 4)
        with pytest.raises(IndexError):
            segment.entry(4)
        with pytest.raises(IndexError):
            segment.page_id(-1)

    def test_zero_pages_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.add_segment("empty", 0)


class TestAddressSpace:
    def test_segment_ids_unique(self):
        space = AddressSpace()
        a = space.add_segment("a", 1)
        b = space.add_segment("b", 1)
        assert a.segment_id != b.segment_id

    def test_entry_by_page_id(self):
        space = AddressSpace()
        segment = space.add_segment("heap", 8)
        pte = space.entry(PageId(segment.segment_id, 3))
        assert pte.page_id == PageId(segment.segment_id, 3)

    def test_unknown_segment(self):
        space = AddressSpace()
        with pytest.raises(KeyError):
            space.segment(42)

    def test_totals(self):
        space = AddressSpace()
        space.add_segment("a", 10)
        space.add_segment("b", 20)
        assert space.total_pages == 30
        assert space.touched_pages == 0


class TestPageTableEntry:
    def test_state_transitions(self):
        space = AddressSpace()
        pte = space.add_segment("heap", 1).entry(0)
        assert pte.state == PageState.UNTOUCHED
        pte.mark_resident(7)
        assert pte.state == PageState.RESIDENT and pte.frame == 7
        pte.mark_nonresident(PageState.COMPRESSED)
        assert pte.state == PageState.COMPRESSED and pte.frame is None

    def test_mark_nonresident_rejects_resident(self):
        space = AddressSpace()
        pte = space.add_segment("heap", 1).entry(0)
        with pytest.raises(ValueError):
            pte.mark_nonresident(PageState.RESIDENT)

    def test_unsaved_changes(self):
        space = AddressSpace()
        pte = space.add_segment("heap", 1).entry(0)
        assert pte.has_unsaved_changes  # never saved
        pte.note_saved()
        assert not pte.has_unsaved_changes
        pte.content.store_word(0, 1)
        assert pte.has_unsaved_changes


class TestOverheadModel:
    def test_paper_example(self):
        """Section 4.4: 60 MBytes / 4-KByte pages -> 120 KBytes extra."""
        total_pages = mbytes(60) // PAGE
        extra = (
            page_table_overhead_bytes(total_pages, compression_cache=True)
            - page_table_overhead_bytes(total_pages, compression_cache=False)
        )
        assert extra == 120 * 1024

    def test_per_page_constants(self):
        assert STD_PTE_BYTES == 4
        assert CC_PTE_BYTES == 12

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            page_table_overhead_bytes(-1, True)
