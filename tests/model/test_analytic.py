"""Figure 1 analytic models: shape checks from the paper's description."""

import pytest

from repro.model.analytic import (
    figure_1a,
    figure_1b,
    in_memory_speedup,
    read_bandwidth_speedup,
    transfer_bandwidth_speedup,
    write_bandwidth_speedup,
)


class TestBandwidthSpeedup:
    def test_win_iff_compression_fast_and_effective(self):
        # Fast compression, 4:1 ratio: clear win.
        assert write_bandwidth_speedup(0.25, 8.0) > 2.0
        # Slow compression, poor ratio: slowdown.
        assert write_bandwidth_speedup(0.9, 0.5) < 1.0

    def test_break_even_boundary(self):
        """Speedup > 1 exactly when 1/c + r < 1."""
        assert write_bandwidth_speedup(0.5, 2.0) == pytest.approx(1.0)
        assert write_bandwidth_speedup(0.49, 2.0) > 1.0
        assert write_bandwidth_speedup(0.51, 2.0) < 1.0

    def test_reads_benefit_from_faster_decompression(self):
        assert (
            read_bandwidth_speedup(0.5, 2.0)
            > write_bandwidth_speedup(0.5, 2.0)
        )

    def test_monotone_in_both_axes(self):
        for fn in (write_bandwidth_speedup, read_bandwidth_speedup,
                   transfer_bandwidth_speedup):
            assert fn(0.2, 4.0) > fn(0.4, 4.0)   # better ratio wins
            assert fn(0.4, 8.0) > fn(0.4, 2.0)   # faster compression wins

    def test_infinitely_fast_compression_limit(self):
        # As c grows the speedup approaches 1/r.
        assert write_bandwidth_speedup(0.25, 1e9) == pytest.approx(
            4.0, rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            write_bandwidth_speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            write_bandwidth_speedup(1.5, 1.0)
        with pytest.raises(ValueError):
            write_bandwidth_speedup(0.5, 0.0)


class TestInMemorySpeedup:
    def test_sharp_leap_when_working_set_fits(self):
        """Figure 1(b)'s discontinuity: once the compressed set fits, all
        I/O disappears, and with fast compression the speedup jumps."""
        c = 16.0
        fits = in_memory_speedup(0.5, c, 1000, 2000)
        overflows = in_memory_speedup(0.65, c, 1000, 2000)
        assert fits > 2.0 * overflows
        # The jump dwarfs the smooth change within the fitting region.
        within = in_memory_speedup(0.35, c, 1000, 2000) / fits
        assert within < 1.1

    def test_linear_in_speed_when_fitting(self):
        """'The speedup due to compression is linear in the speed of
        compression' when pages compress 2:1 or better."""
        s2 = in_memory_speedup(0.4, 2.0, 1000, 2000)
        s4 = in_memory_speedup(0.4, 4.0, 1000, 2000)
        s8 = in_memory_speedup(0.4, 8.0, 1000, 2000)
        assert s4 == pytest.approx(2 * s2, rel=1e-6)
        assert s8 == pytest.approx(2 * s4, rel=1e-6)

    def test_slowdown_with_slow_compression_poor_ratio(self):
        """The darker right-hand region of Figure 1(b)."""
        assert in_memory_speedup(0.9, 0.5, 1000, 2000) < 1.0

    def test_no_paging_no_change(self):
        assert in_memory_speedup(0.5, 4.0, 2000, 1000) == 1.0

    def test_beats_pure_bandwidth_when_fitting(self):
        """The compression cache's edge over compress-to-disk: with the
        set fitting compressed, no I/O remains at all."""
        in_memory = in_memory_speedup(0.4, 4.0, 1000, 2000)
        to_disk = transfer_bandwidth_speedup(0.4, 4.0)
        assert in_memory > to_disk

    def test_validation(self):
        with pytest.raises(ValueError):
            in_memory_speedup(0.5, 4.0, 0, 100)


class TestSurfaces:
    def test_figure_1a_surface_shape(self):
        surface = figure_1a()
        assert len(surface.values) == len(surface.speeds)
        assert all(len(row) == len(surface.ratios)
                   for row in surface.values)
        # Top-left (fast compression, strong ratio) is the best corner.
        best = surface.values[-1][0]
        worst = surface.values[0][-1]
        assert best > 4.0
        assert worst < 1.0

    def test_figure_1b_has_leap(self):
        surface = figure_1b()
        row = surface.values[-1]  # fastest compression
        jumps = [
            row[i] / row[i + 1] for i in range(len(row) - 1)
        ]
        assert max(jumps) > 1.5  # a visible discontinuity along ratio

    def test_surface_lookup(self):
        surface = figure_1a()
        assert surface.at(16, 0.05) == surface.values[-1][0]
