"""Stack distances, miss-ratio curves, working sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.locality import (
    INFINITE,
    MissRatioCurve,
    predicted_compression_benefit,
    stack_distances,
    working_set_sizes,
)


class TestStackDistances:
    def test_first_touches_infinite(self):
        assert stack_distances("abc") == [INFINITE] * 3

    def test_immediate_reuse_is_one(self):
        assert stack_distances("aa")[1] == 1

    def test_textbook_example(self):
        # a b c b a: b at depth 2, a at depth 3.
        assert stack_distances("abcba") == [
            INFINITE, INFINITE, INFINITE, 2, 3,
        ]

    def test_cyclic_pattern(self):
        # Cycling through N pages: every reuse at distance N.
        refs = list("abcd") * 3
        distances = stack_distances(refs)
        assert all(d == 4 for d in distances[4:])


class TestMissRatioCurve:
    def test_lru_inclusion(self):
        """More memory never means more faults (LRU's stack property)."""
        refs = [hash(f"p{i * 7 % 13}") for i in range(200)]
        curve = MissRatioCurve.from_references(refs)
        faults = [curve.faults_at(size) for size in range(0, 15)]
        assert faults == sorted(faults, reverse=True)

    def test_compulsory_floor(self):
        refs = list("abcd") * 5
        curve = MissRatioCurve.from_references(refs)
        assert curve.faults_at(4) == 4          # only first touches
        assert curve.faults_at(100) == 4

    def test_cyclic_cliff(self):
        """The thrasher's regime: one frame short of the cycle means a
        fault on every access."""
        refs = list(range(10)) * 4
        curve = MissRatioCurve.from_references(refs)
        assert curve.faults_at(9) == 40   # LRU worst case
        assert curve.faults_at(10) == 10  # everything fits

    def test_knee_detection(self):
        refs = list(range(8)) * 10
        curve = MissRatioCurve.from_references(refs)
        assert curve.knee() == 8

    def test_curve_samples(self):
        refs = list("ab") * 4
        curve = MissRatioCurve.from_references(refs)
        assert curve.curve([0, 2]) == [(0, 8), (2, 2)]

    def test_negative_size_rejected(self):
        curve = MissRatioCurve.from_references("ab")
        with pytest.raises(ValueError):
            curve.faults_at(-1)


class TestAgainstSimulator:
    def test_predicts_standard_vm_exactly(self):
        """Mattson's algorithm must agree with the simulator's true-LRU
        StandardVM fault-for-fault."""
        from repro.mem.page import mbytes
        from repro.sim.engine import SimulationEngine
        from repro.sim.machine import Machine, MachineConfig
        from repro.workloads import SyntheticWorkload

        workload = SyntheticWorkload(
            mbytes(1), references=600, seed=13, write_fraction=0.0,
            hot_probability=0.6,
        )
        workload.build()
        refs = [ref.page_id for ref in workload.references()]
        curve = MissRatioCurve.from_references(refs)

        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.25),
                          compression_cache=False),
            workload.build(),
        )
        result = SimulationEngine(machine).run(workload.references())
        predicted = curve.faults_at(machine.user_frames)
        assert result.metrics_snapshot["faults"]["total"] == predicted


class TestWorkingSet:
    def test_window_bounds_size(self):
        refs = list("abcabc")
        sizes = working_set_sizes(refs, tau=3)
        assert sizes == [1, 2, 3, 3, 3, 3]

    def test_single_page_workload(self):
        assert working_set_sizes(list("aaaa"), tau=2) == [1, 1, 1, 1]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            working_set_sizes(list("ab"), tau=0)

    @settings(max_examples=50, deadline=None)
    @given(
        refs=st.lists(st.integers(0, 10), min_size=1, max_size=100),
        tau=st.integers(1, 20),
    )
    def test_size_never_exceeds_window_or_universe(self, refs, tau):
        sizes = working_set_sizes(refs, tau)
        assert len(sizes) == len(refs)
        assert all(1 <= s <= min(tau, len(set(refs))) for s in sizes)


class TestPredictedBenefit:
    def test_compression_extends_capacity(self):
        refs = list(range(20)) * 3
        curve = MissRatioCurve.from_references(refs)
        std, cc = predicted_compression_benefit(
            curve, frames=10, compression_ratio=0.25
        )
        assert std == 60      # cycle > memory: every access faults
        assert cc == 20       # fits compressed: compulsory only

    def test_poor_ratio_barely_helps(self):
        refs = list(range(20)) * 3
        curve = MissRatioCurve.from_references(refs)
        std, cc = predicted_compression_benefit(
            curve, frames=10, compression_ratio=0.95
        )
        assert cc == std  # effective capacity still below the cycle

    def test_invalid_ratio(self):
        curve = MissRatioCurve.from_references("ab")
        with pytest.raises(ValueError):
            predicted_compression_benefit(curve, 4, 0.0)


@settings(max_examples=60, deadline=None)
@given(refs=st.lists(st.integers(0, 15), min_size=1, max_size=150))
def test_distance_histogram_accounts_for_everything(refs):
    curve = MissRatioCurve.from_references(refs)
    assert curve.compulsory == len(set(refs))
    assert curve.compulsory + sum(curve.histogram.values()) == len(refs)
    # Infinite memory: only compulsory misses remain.
    assert curve.faults_at(10 ** 6) == curve.compulsory
