"""ServiceConfig: validation, routing invariants, CLI tenant grammar."""

import pytest

from repro.service.config import (
    ServiceConfig,
    TenantSpec,
    page_key,
    tenants_from_spec,
)


def make_config(**overrides):
    defaults = dict(shards=4, vslots=16, tier_bytes=(1 << 20,),
                    page_size=4096)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestValidation:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.shards == 1 and config.vslots == 64

    @pytest.mark.parametrize("bad", [
        dict(shards=0),
        dict(shards=32, vslots=16),
        dict(tenants=()),
        dict(tenants=(TenantSpec("a"), TenantSpec("a"))),
        dict(tier_bytes=()),
        dict(tier_bytes=(16 * 4096 - 1,)),  # < one page per vslot
        dict(page_size=32),
        dict(batch_ops=0),
        dict(max_pending=8, batch_ops=32),
        dict(tenant_inflight=0),
        dict(debug_op_delay_s=-1.0),
        dict(compressor="no-such-kernel"),
    ])
    def test_rejected_geometries(self, bad):
        with pytest.raises((ValueError, KeyError)):
            make_config(**bad)

    def test_tenant_spec_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("a:b")
        with pytest.raises(ValueError):
            TenantSpec("ok", quota_bytes=0)


class TestRouting:
    def test_slots_of_shard_partition_the_slot_space(self):
        config = make_config(shards=3, vslots=16)
        owned = [slot for shard in range(3)
                 for slot in config.slots_of_shard(shard)]
        assert sorted(owned) == list(range(16))

    def test_shard_of_agrees_with_vslot_routing(self):
        config = make_config(shards=5, vslots=40)
        for key in range(0, 4000, 7):
            vslot = config.vslot_of(key)
            assert config.shard_of(key) == config.shard_of_vslot(vslot)
            assert vslot in config.slots_of_shard(config.shard_of(key))

    def test_vslot_of_is_shard_count_independent(self):
        base = make_config(shards=1, vslots=32)
        resharded = base.with_shards(8)
        for key in range(0, 10000, 13):
            assert base.vslot_of(key) == resharded.vslot_of(key)

    def test_with_shards_preserves_geometry(self):
        base = make_config(shards=2, vslots=16,
                           tenants=(TenantSpec("t", 1 << 20),))
        other = base.with_shards(4)
        assert other.shards == 4
        assert other.vslots == base.vslots
        assert other.tenants == base.tenants
        assert other.slot_tier_bytes() == base.slot_tier_bytes()
        assert other.slot_quota_bytes(0) == base.slot_quota_bytes(0)


class TestCarvings:
    def test_slot_tier_bytes(self):
        config = make_config(vslots=16, tier_bytes=(1 << 20, 2 << 20))
        assert config.slot_tier_bytes() == (65536, 131072)

    def test_slot_quota_floor_is_one_byte(self):
        config = make_config(
            vslots=16, tenants=(TenantSpec("tiny", quota_bytes=4),)
        )
        assert config.slot_quota_bytes(0) == 1

    def test_no_quota_stays_none(self):
        assert make_config().slot_quota_bytes(0) is None

    def test_tenant_index(self):
        config = make_config(
            tenants=(TenantSpec("alpha"), TenantSpec("beta"))
        )
        assert config.tenant_index("beta") == 1
        with pytest.raises(KeyError):
            config.tenant_index("gamma")


class TestPageKey:
    def test_stable_across_calls_and_types(self):
        assert page_key("alpha:17") == page_key(b"alpha:17")
        # Pinned: blake2b-8 is process- and run-independent, unlike
        # hash() under PYTHONHASHSEED.  A change here breaks every
        # recorded ledger digest.
        assert page_key("alpha:0") == 0xA66B980AC0DA4735

    def test_distinct_names_distinct_keys(self):
        keys = {page_key(f"tenant:{i}") for i in range(1000)}
        assert len(keys) == 1000


class TestTenantGrammar:
    def test_names_only(self):
        tenants = tenants_from_spec("alpha,beta")
        assert [t.name for t in tenants] == ["alpha", "beta"]
        assert all(t.quota_bytes is None for t in tenants)

    def test_quotas_and_weights(self):
        tenants = tenants_from_spec("alpha=4:3,beta=1.5:1")
        assert tenants[0].quota_bytes == 4 << 20
        assert tenants[1].quota_bytes == int(1.5 * (1 << 20))

    def test_default_quota_applies_to_bare_names(self):
        tenants = tenants_from_spec("a,b=2", default_quota=1 << 20)
        assert tenants[0].quota_bytes == 1 << 20
        assert tenants[1].quota_bytes == 2 << 20

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            tenants_from_spec(" , ")
