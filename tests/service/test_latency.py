"""LatencyRecorder: error bound vs exact percentiles, merging, snapshots."""

import random

import pytest

from repro.service.latency import (
    _SUB_BITS,
    LatencyRecorder,
    _bucket_index,
    _bucket_upper_bound,
    merge_all,
)

#: Recorded percentiles may exceed the exact sample by at most one
#: bucket width: a factor of 2**-_SUB_BITS of the value (~3.1%).
MAX_REL_ERROR = 2.0 ** -_SUB_BITS


def exact_percentile(samples, p):
    ordered = sorted(samples)
    rank = max(1, int(len(ordered) * p / 100.0 + 0.5))
    return ordered[rank - 1]


class TestBuckets:
    def test_small_values_are_exact(self):
        for value in range(0, 1 << _SUB_BITS):
            assert _bucket_upper_bound(_bucket_index(value)) == value

    def test_upper_bound_brackets_value(self):
        for value in [33, 100, 1000, 4097, 10**6, 2**40 + 12345]:
            index = _bucket_index(value)
            upper = _bucket_upper_bound(index)
            assert upper >= value
            assert upper - value <= value * MAX_REL_ERROR

    def test_buckets_are_monotonic(self):
        previous = -1
        for value in range(0, 5000):
            index = _bucket_index(value)
            assert index >= previous
            previous = index


class TestLatencyRecorder:
    def test_percentiles_within_error_bound(self):
        rng = random.Random(7)
        # Heavy-tailed: most samples small, a few very large — the shape
        # the recorder exists to summarise.
        samples = [int(rng.paretovariate(1.3) * 50) + 1
                   for _ in range(20000)]
        recorder = LatencyRecorder.of(samples)
        assert recorder.count == len(samples)
        for p in (50.0, 95.0, 99.0, 99.9):
            exact = exact_percentile(samples, p)
            got = recorder.percentile(p)
            # Upper-bound convention: never understates the tail, and
            # overstates it by at most one bucket width.
            assert got >= exact * (1.0 - 1e-9)
            assert got <= exact * (1.0 + MAX_REL_ERROR) + 1

    def test_max_caps_the_top_percentile(self):
        recorder = LatencyRecorder.of([10, 20, 1_000_000])
        assert recorder.percentile(100.0) == 1_000_000

    def test_mean_is_exact(self):
        recorder = LatencyRecorder.of([1, 2, 3, 4])
        assert recorder.mean == 2.5

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(99.0) == 0
        assert recorder.mean == 0.0
        snap = recorder.snapshot()
        assert snap["count"] == 0

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_rejects_out_of_range_percentile(self):
        with pytest.raises(ValueError):
            LatencyRecorder.of([1]).percentile(101.0)

    def test_merge_equals_recording_together(self):
        rng = random.Random(11)
        a = [rng.randrange(1, 100000) for _ in range(5000)]
        b = [rng.randrange(1, 100000) for _ in range(5000)]
        merged = merge_all([LatencyRecorder.of(a), LatencyRecorder.of(b)])
        combined = LatencyRecorder.of(a + b)
        assert merged.count == combined.count
        assert merged.total == combined.total
        assert merged.max_value == combined.max_value
        for p in (50.0, 95.0, 99.0, 99.9):
            assert merged.percentile(p) == combined.percentile(p)

    def test_snapshot_keys(self):
        snap = LatencyRecorder.of(range(1, 1001)).snapshot()
        assert set(snap) == {"count", "mean", "max",
                             "p50", "p95", "p99", "p999"}
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["p999"]
        assert snap["p999"] <= snap["max"]
