"""Ledger merge: commutativity, canonical form, digest stability."""

import pytest

from repro.service.ledger import (
    COUNTERS,
    TenantLedger,
    ledger_digest,
    merge_ledgers,
)


def ledger_dict(**counts):
    base = dict.fromkeys(COUNTERS, 0)
    base["resident_bytes"] = 0
    base["resident_entries"] = 0
    base.update(counts)
    return base


class TestTenantLedger:
    def test_round_trip(self):
        ledger = TenantLedger()
        ledger.bump("gets")
        ledger.bump("stored_bytes", 123)
        ledger.resident_bytes = 7
        again = TenantLedger.from_dict(ledger.as_dict())
        assert again.as_dict() == ledger.as_dict()

    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError):
            TenantLedger.from_dict({"bogus": 1})

    def test_as_dict_schema_is_fixed(self):
        keys = list(TenantLedger().as_dict())
        assert keys == list(COUNTERS) + [
            "resident_bytes", "resident_entries"
        ]


class TestMerge:
    def test_merge_is_order_independent(self):
        parts = [
            {"alpha": ledger_dict(gets=3, hits=1)},
            {"alpha": ledger_dict(gets=2, misses=2),
             "beta": ledger_dict(puts=5)},
            {"beta": ledger_dict(puts=1, stored_bytes=64)},
        ]
        forward = merge_ledgers(parts)
        backward = merge_ledgers(reversed(parts))
        assert forward == backward
        assert forward["alpha"]["gets"] == 5
        assert forward["beta"]["puts"] == 6
        assert ledger_digest(forward) == ledger_digest(backward)

    def test_tenants_sorted_in_canonical_form(self):
        merged = merge_ledgers([
            {"zeta": ledger_dict()}, {"alpha": ledger_dict()}
        ])
        assert list(merged) == ["alpha", "zeta"]

    def test_digest_sensitive_to_any_counter(self):
        a = merge_ledgers([{"t": ledger_dict(gets=1)}])
        b = merge_ledgers([{"t": ledger_dict(gets=2)}])
        assert ledger_digest(a) != ledger_digest(b)
