"""Wire framing: round trips, zero-copy views, truncation rejection."""

import pytest

from repro.service.errors import ProtocolError
from repro.service.protocol import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    ST_HIT,
    ST_MISS,
    RequestBatch,
    ResponseBatch,
    iter_requests,
    iter_responses,
    pack_requests,
)


class TestRequestFraming:
    def test_round_trip_mixed_batch(self):
        records = [
            (OP_PUT, 0, 5, 123456789, b"payload bytes"),
            (OP_GET, 1, 6, 42, None),
            (OP_DELETE, 0, 7, 7, None),
        ]
        frame = pack_requests(records)
        out = list(iter_requests(memoryview(bytes(frame))))
        assert len(out) == 3
        op, tenant, vslot, key, payload = out[0]
        assert (op, tenant, vslot, key) == (OP_PUT, 0, 5, 123456789)
        assert bytes(payload) == b"payload bytes"
        assert out[1][:4] == (OP_GET, 1, 6, 42)
        assert out[1][4].nbytes == 0
        assert out[2][:4] == (OP_DELETE, 0, 7, 7)

    def test_payload_views_are_zero_copy(self):
        frame = bytes(pack_requests([(OP_PUT, 0, 0, 1, b"x" * 4096)]))
        view = memoryview(frame)
        (_, _, _, _, payload) = next(iter_requests(view))
        # A slice of the frame buffer, not a copy.
        assert payload.obj is frame

    def test_batch_accepts_buffer_protocol_payloads(self):
        batch = RequestBatch()
        batch.add(OP_PUT, 0, 0, 1, memoryview(b"abcd"))
        batch.add(OP_PUT, 0, 0, 2, bytearray(b"efgh"))
        out = list(iter_requests(memoryview(bytes(batch.finish()))))
        assert [bytes(p) for *_, p in out] == [b"abcd", b"efgh"]

    def test_64bit_keys_and_16bit_fields_survive(self):
        key = (1 << 64) - 1
        frame = pack_requests([(OP_GET, 65535, 65535, key, None)])
        (_, tenant, vslot, got, _) = next(
            iter_requests(memoryview(bytes(frame)))
        )
        assert (tenant, vslot, got) == (65535, 65535, key)

    def test_truncated_record_rejected(self):
        frame = bytes(pack_requests([(OP_GET, 0, 0, 1, None)]))
        with pytest.raises(ProtocolError):
            list(iter_requests(memoryview(frame[:-1])))

    def test_truncated_payload_rejected(self):
        frame = bytes(pack_requests([(OP_PUT, 0, 0, 1, b"abcdef")]))
        with pytest.raises(ProtocolError):
            list(iter_requests(memoryview(frame[:-3])))

    def test_trailing_garbage_rejected(self):
        frame = bytes(pack_requests([(OP_GET, 0, 0, 1, None)])) + b"xx"
        with pytest.raises(ProtocolError):
            list(iter_requests(memoryview(frame)))

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError):
            list(iter_requests(memoryview(b"\x01")))


class TestResponseFraming:
    def test_round_trip(self):
        batch = ResponseBatch()
        batch.add(ST_HIT, b"page data")
        batch.add(ST_MISS)
        out = list(iter_responses(memoryview(bytes(batch.finish()))))
        assert out[0][0] == ST_HIT
        assert bytes(out[0][1]) == b"page data"
        assert out[1][0] == ST_MISS
        assert out[1][1].nbytes == 0

    def test_truncated_response_rejected(self):
        batch = ResponseBatch()
        batch.add(ST_HIT, b"abcdef")
        frame = bytes(batch.finish())
        with pytest.raises(ProtocolError):
            list(iter_responses(memoryview(frame[:-2])))
