"""End-to-end CacheService tests: correctness, shard-count invariance,
backpressure, and failure isolation.

No pytest-asyncio in the toolchain: each test drives its coroutine with
``asyncio.run``, which also guarantees a fresh loop (and fresh shard
processes) per test.
"""

import asyncio

import pytest

from repro.service import (
    BackpressureError,
    CacheService,
    ServiceConfig,
    ShardDeadError,
    TenantSpec,
)
from repro.service.bench import run_service_point, service_spec
from repro.service.protocol import (
    OP_GET,
    OP_PUT,
    OP_SHUTDOWN,
    ST_BYE,
    ST_HIT,
    ST_PROTOCOL_ERROR,
    ST_STORED,
    iter_responses,
    pack_requests,
)
from repro.service.server import serve_tcp

PAGE = 1024


def make_config(**overrides):
    defaults = dict(
        shards=2,
        vslots=8,
        tenants=(TenantSpec("default"),),
        tier_bytes=(64 << 10,),
        compressor="null",
        page_size=PAGE,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def key_on_shard(config, shard):
    return next(k for k in range(10000) if config.shard_of(k) == shard)


class TestRoundTrip:
    def test_put_get_delete(self):
        async def scenario():
            service = CacheService(make_config())
            await service.start()
            try:
                page = bytes([7]) * PAGE
                assert await service.put("default", 123, page)
                got = await service.get("default", 123)
                assert bytes(got) == page
                assert await service.get("default", 456) is None
                assert await service.delete("default", 123)
                assert not await service.delete("default", 123)
                assert await service.get("default", 123) is None
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_keys_spread_over_both_shards(self):
        async def scenario():
            config = make_config()
            service = CacheService(config)
            await service.start()
            try:
                for key in range(40):
                    assert await service.put(
                        "default", key, key.to_bytes(2, "little") * 16
                    )
                for key in range(40):
                    got = await service.get("default", key)
                    assert bytes(got) == key.to_bytes(2, "little") * 16
                stats = await service.stats()
                per_shard_ops = [s["ops"] for s in stats["shards"]]
                assert all(ops > 0 for ops in per_shard_ops)
                ledger = stats["ledgers"]["default"]
                assert ledger["stores"] == 40
                assert ledger["hits"] + ledger["cold_hits"] == 40
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_quota_denial_surfaces_as_false(self):
        async def scenario():
            # Per-slot quota (800 / 8 = 100 bytes) below one stored page.
            config = make_config(
                tenants=(TenantSpec("capped", quota_bytes=800),)
            )
            service = CacheService(config)
            await service.start()
            try:
                assert not await service.put("capped", 1, b"x" * PAGE)
                stats = await service.stats()
                assert stats["ledgers"]["capped"]["quota_denials"] == 1
            finally:
                await service.stop()

        asyncio.run(scenario())


class TestShardCountInvariance:
    def test_ledgers_identical_at_1_and_4_shards(self):
        """The headline determinism contract, digest-pinned.

        Same seeded traffic (Zipf mix, two tenants, one quota-bound,
        adaptive compressor) against 1 and 4 shard processes must yield
        byte-identical merged ledgers — and therefore equal digests and
        per-status counts.
        """
        tenants = [
            {"name": "alpha", "weight": 3.0, "keys": 3000,
             "quota_bytes": None},
            {"name": "beta", "weight": 1.0, "keys": 60,
             "quota_bytes": 192 << 10},
        ]
        runs = [
            run_service_point(service_spec(shards, ops=600, clients=4,
                                           tenants=tenants))
            for shards in (1, 4)
        ]
        assert runs[0]["ledger_digest"] == runs[1]["ledger_digest"]
        assert runs[0]["ledgers"] == runs[1]["ledgers"]
        assert runs[0]["statuses"] == runs[1]["statuses"]
        # The traffic actually exercised the machinery (hits, stores,
        # quota denials; slot-level eviction paths are pinned by
        # test_store.py).
        beta = runs[0]["ledgers"]["beta"]
        assert beta["quota_denials"] > 0 and beta["stores"] > 0
        assert runs[0]["statuses"].get("hit", 0) > 0


class TestFlowControl:
    def test_queue_full_returns_retryable_error(self):
        async def scenario():
            config = make_config(
                shards=1, batch_ops=1, max_pending=1,
                debug_op_delay_s=0.2,
            )
            service = CacheService(config)
            await service.start()
            try:
                slow = asyncio.ensure_future(
                    service.put("default", 1, b"a" * PAGE)
                )
                await asyncio.sleep(0.05)  # op now holds the one slot
                with pytest.raises(BackpressureError) as info:
                    await service.put("default", 2, b"b" * PAGE,
                                      wait=False)
                assert info.value.retryable
                assert await slow  # the in-flight op still completes
                # And a waiting submission parks instead of raising.
                assert await service.put("default", 2, b"b" * PAGE)
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_bench_clients_retry_backpressure(self):
        """The bench absorbs retryable rejections instead of failing.

        One shard with a single pending slot, a per-op stall, and four
        concurrent clients guarantees admission rejections; every op
        must still land (per-slot order preserved) and the retry count
        must surface in the replay metrics.
        """
        from repro.service.bench import replay_traffic
        from repro.workloads.traffic import TenantTraffic, TrafficSpec

        async def scenario():
            config = make_config(
                shards=1, batch_ops=1, max_pending=1,
                debug_op_delay_s=0.005,
            )
            traffic = TrafficSpec(
                ops=80, seed=11, page_size=PAGE,
                tenants=(TenantTraffic("default", keys=40),),
            )
            result = await replay_traffic(config, traffic, clients=4)
            retries = result["backpressure_retries"]
            assert retries["total"] > 0
            assert retries["by_tenant"] == {"default": retries["total"]}
            # Retried ops were eventually accepted: every op answered.
            assert sum(result["statuses"].values()) == 80
            assert "backpressure" not in result["statuses"]

        asyncio.run(scenario())

    def test_tenant_inflight_cap(self):
        async def scenario():
            config = make_config(
                shards=1, batch_ops=1, tenant_inflight=1,
                debug_op_delay_s=0.2,
            )
            service = CacheService(config)
            await service.start()
            try:
                slow = asyncio.ensure_future(
                    service.put("default", 1, b"a" * PAGE)
                )
                await asyncio.sleep(0.05)
                with pytest.raises(BackpressureError):
                    await service.get("default", 1, wait=False)
                assert await slow
            finally:
                await service.stop()

        asyncio.run(scenario())


class TestShardDeath:
    def test_dead_shard_fails_fast_others_serve(self):
        async def scenario():
            config = make_config()
            service = CacheService(config)
            await service.start()
            try:
                key0 = key_on_shard(config, 0)
                key1 = key_on_shard(config, 1)
                assert await service.put("default", key1, b"y" * PAGE)
                service._shards[0].process.kill()
                service._shards[0].process.join(timeout=5)
                await asyncio.sleep(0.1)  # let the reader notice EOF
                assert service.live_shards() == 1
                with pytest.raises(ShardDeadError):
                    await service.put("default", key0, b"x" * PAGE)
                # The healthy shard is unaffected.
                got = await service.get("default", key1)
                assert bytes(got) == b"y" * PAGE
            finally:
                # The deadlock check: shutdown with a dead shard must
                # still complete promptly.
                await asyncio.wait_for(service.stop(), timeout=10)

        asyncio.run(scenario())

    def test_inflight_ops_fail_not_hang(self):
        async def scenario():
            config = make_config(shards=1, debug_op_delay_s=0.5)
            service = CacheService(config)
            await service.start()
            try:
                doomed = asyncio.ensure_future(
                    service.put("default", 1, b"a" * PAGE)
                )
                await asyncio.sleep(0.1)  # op is inside the worker
                service._shards[0].process.kill()
                with pytest.raises(ShardDeadError):
                    await asyncio.wait_for(doomed, timeout=10)
            finally:
                await asyncio.wait_for(service.stop(), timeout=10)

        asyncio.run(scenario())


class TestTcpFrontEnd:
    def test_tcp_round_trip_and_shutdown(self):
        async def scenario():
            service = CacheService(make_config(shards=1))
            await service.start()
            server, stopped = await serve_tcp(service, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def round_trip(records):
                    frame = bytes(pack_requests(records))
                    writer.write(
                        len(frame).to_bytes(4, "little") + frame
                    )
                    await writer.drain()
                    length = int.from_bytes(
                        await reader.readexactly(4), "little"
                    )
                    reply = await reader.readexactly(length)
                    return list(iter_responses(memoryview(reply)))

                page = b"tcp page".ljust(PAGE, b".")
                put = await round_trip([(OP_PUT, 0, 0, 99, page)])
                assert put[0][0] == ST_STORED
                get = await round_trip([(OP_GET, 0, 0, 99, None)])
                assert get[0][0] == ST_HIT
                assert bytes(get[0][1]) == page
                bye = await round_trip([(OP_SHUTDOWN, 0, 0, 0, None)])
                assert bye[0][0] == ST_BYE
                assert stopped.is_set()
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        asyncio.run(scenario())

    def _serve(self, **kwargs):
        """Start service + TCP front-end; returns an async context."""
        import contextlib

        @contextlib.asynccontextmanager
        async def ctx():
            service = CacheService(make_config(shards=1))
            await service.start()
            server, _stopped = await serve_tcp(service, port=0, **kwargs)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                yield reader, writer
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()

        return ctx()

    async def _read_status(self, reader):
        length = int.from_bytes(await reader.readexactly(4), "little")
        reply = await reader.readexactly(length)
        return list(iter_responses(memoryview(reply)))[0][0]

    def test_truncated_frame_draws_protocol_error(self):
        async def scenario():
            async with self._serve() as (reader, writer):
                # Header claims one record but the frame ends early.
                garbage = b"\x01\x00\x00\x00\xff\xff"
                writer.write(len(garbage).to_bytes(4, "little") + garbage)
                await writer.drain()
                assert await self._read_status(reader) == ST_PROTOCOL_ERROR
                # The server hangs up after answering.
                assert await reader.read() == b""

        asyncio.run(scenario())

    def test_oversized_frame_draws_protocol_error(self):
        async def scenario():
            async with self._serve(max_frame_bytes=4096) as (
                reader, writer
            ):
                writer.write((4097).to_bytes(4, "little"))
                await writer.drain()
                assert await self._read_status(reader) == ST_PROTOCOL_ERROR
                assert await reader.read() == b""

        asyncio.run(scenario())

    def test_idle_connection_times_out(self):
        async def scenario():
            async with self._serve(idle_timeout=0.1) as (reader, writer):
                # Send nothing; the server must hang up on its own.
                assert await asyncio.wait_for(reader.read(), timeout=5) \
                    == b""

        asyncio.run(scenario())

    def test_active_connection_survives_idle_timeout(self):
        async def scenario():
            async with self._serve(idle_timeout=5.0) as (reader, writer):
                frame = bytes(pack_requests(
                    [(OP_PUT, 0, 0, 7, b"k".ljust(PAGE, b"."))]
                ))
                writer.write(len(frame).to_bytes(4, "little") + frame)
                await writer.drain()
                assert await self._read_status(reader) == ST_STORED

        asyncio.run(scenario())
