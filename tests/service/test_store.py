"""VslotStore: tiering, promotion, quotas — with byte-exact capacities.

These tests use the ``null`` kernel (stored size == page size) on a
single-vslot geometry, so every capacity decision is arithmetic the test
can predict: warm tier holds exactly 3 pages, cold tier exactly 2.
"""

from repro.service.config import ServiceConfig, TenantSpec
from repro.service.store import VslotStore

PAGE = 64
WARM_PAGES = 3
COLD_PAGES = 2


def make_store(tenants=(TenantSpec("t"),), tiers=(WARM_PAGES, COLD_PAGES)):
    config = ServiceConfig(
        shards=1,
        vslots=1,
        tenants=tuple(tenants),
        tier_bytes=tuple(n * PAGE for n in tiers),
        compressor="null",
        page_size=PAGE,
    )
    return VslotStore(config, vslot=0)


def page(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * PAGE


class TestBasicOps:
    def test_put_get_round_trip(self):
        store = make_store()
        assert store.put(0, key=1, page=page(1))
        assert store.get(0, key=1) == page(1)
        ledger = store.ledger(0).as_dict()
        assert ledger["puts"] == ledger["stores"] == 1
        assert ledger["gets"] == ledger["hits"] == 1
        assert ledger["stored_bytes"] == PAGE

    def test_miss(self):
        store = make_store()
        assert store.get(0, key=99) is None
        assert store.ledger(0).as_dict()["misses"] == 1

    def test_replacement_keeps_one_resident_copy(self):
        store = make_store()
        store.put(0, key=1, page=page(1))
        store.put(0, key=1, page=page(2))
        assert store.resident_entries() == 1
        assert store.resident_bytes() == PAGE
        assert store.get(0, key=1) == page(2)
        assert store.ledger(0).resident_bytes == PAGE

    def test_delete_and_delete_miss(self):
        store = make_store()
        store.put(0, key=1, page=page(1))
        assert store.delete(0, key=1)
        assert not store.delete(0, key=1)
        assert store.get(0, key=1) is None
        ledger = store.ledger(0).as_dict()
        assert ledger["deletes"] == 1
        assert ledger["delete_misses"] == 1
        assert store.resident_entries() == 0
        assert store.ledger(0).resident_bytes == 0


class TestTiering:
    def test_warm_overflow_demotes_lru(self):
        store = make_store()
        for key in (1, 2, 3, 4):  # warm holds 3; key 1 demotes
            store.put(0, key=key, page=page(key))
        assert store.ledger(0).as_dict()["demotions"] == 1
        assert 1 in store.tiers[1]
        assert 1 not in store.tiers[0]
        assert store.resident_entries() == 4

    def test_cold_hit_promotes(self):
        store = make_store()
        for key in (1, 2, 3, 4):
            store.put(0, key=key, page=page(key))
        assert store.get(0, key=1) == page(1)  # cold hit
        ledger = store.ledger(0).as_dict()
        assert ledger["cold_hits"] == 1
        assert 1 in store.tiers[0]
        # Promotion made room by demoting the warm LRU (key 2).
        assert ledger["demotions"] == 2
        assert 2 in store.tiers[1]
        # Promotion moves, never duplicates: accounting is unchanged.
        assert store.resident_entries() == 4
        assert store.resident_bytes() == 4 * PAGE

    def test_coldest_overflow_evicts(self):
        store = make_store()
        for key in range(1, 7):  # capacity is 5 pages total
            store.put(0, key=key, page=page(key))
        ledger = store.ledger(0).as_dict()
        assert ledger["evictions"] == 1
        assert store.resident_entries() == 5
        assert store.get(0, key=1) is None  # the eviction victim
        assert store.ledger(0).resident_bytes == 5 * PAGE


class TestQuota:
    def test_oversized_put_denied(self):
        store = make_store(tenants=(TenantSpec("t", quota_bytes=PAGE // 2),))
        assert not store.put(0, key=1, page=page(1))
        ledger = store.ledger(0).as_dict()
        assert ledger["quota_denials"] == 1
        assert ledger["stores"] == 0
        assert store.resident_entries() == 0

    def test_quota_evicts_own_coldest_first(self):
        store = make_store(
            tenants=(TenantSpec("t", quota_bytes=2 * PAGE),)
        )
        store.put(0, key=1, page=page(1))
        store.put(0, key=2, page=page(2))
        store.put(0, key=3, page=page(3))  # over quota: key 1 goes
        ledger = store.ledger(0).as_dict()
        assert ledger["quota_evictions"] == 1
        assert store.get(0, key=1) is None
        assert store.get(0, key=2) == page(2)
        assert store.ledger(0).resident_bytes == 2 * PAGE

    def test_quota_does_not_touch_other_tenants(self):
        store = make_store(
            tenants=(TenantSpec("a", quota_bytes=PAGE), TenantSpec("b"))
        )
        store.put(1, key=100, page=page(9))
        store.put(0, key=1, page=page(1))
        store.put(0, key=2, page=page(2))  # evicts a's key 1 only
        assert store.ledger(0).as_dict()["quota_evictions"] == 1
        assert store.get(1, key=100) == page(9)
        assert store.ledger(1).as_dict()["quota_evictions"] == 0

    def test_replacing_under_quota_is_not_an_eviction(self):
        store = make_store(tenants=(TenantSpec("t", quota_bytes=PAGE),))
        store.put(0, key=1, page=page(1))
        assert store.put(0, key=1, page=page(2))
        assert store.ledger(0).as_dict()["quota_evictions"] == 0
        assert store.get(0, key=1) == page(2)


class TestReporting:
    def test_ledgers_by_name(self):
        store = make_store(tenants=(TenantSpec("a"), TenantSpec("b")))
        store.put(0, key=1, page=page(1))
        store.get(1, key=2)
        by_name = store.ledgers_by_name()
        assert by_name["a"]["stores"] == 1
        assert by_name["b"]["misses"] == 1
