"""Traffic generator: determinism, Zipf skew, versioning, partitioning."""

import math
import random
from collections import Counter

import pytest

from repro.service.config import page_key
from repro.workloads.traffic import (
    DELETE,
    GET,
    PUT,
    TenantTraffic,
    TrafficSpec,
    ZipfSampler,
    diurnal_multiplier,
    generate_ops,
    page_payload,
    partition_by_vslot,
    tenant_weights_from_spec,
)

TWO_TENANTS = (
    TenantTraffic("alpha", weight=3.0, keys=500),
    TenantTraffic("beta", weight=1.0, keys=200),
)


def spec(**overrides):
    defaults = dict(ops=4000, seed=42, tenants=TWO_TENANTS,
                    page_size=1024)
    defaults.update(overrides)
    return TrafficSpec(**defaults)


class TestDeterminism:
    def test_same_spec_same_stream(self):
        assert list(generate_ops(spec())) == list(generate_ops(spec()))

    def test_seed_changes_stream(self):
        assert (list(generate_ops(spec()))
                != list(generate_ops(spec(seed=43))))

    def test_payloads_are_pure_functions(self):
        one = page_payload("alpha", 3, 1, seed=42, page_size=1024)
        two = page_payload("alpha", 3, 1, seed=42, page_size=1024)
        assert one == two
        assert len(one) == 1024


class TestStreamShape:
    def test_op_mix_tracks_fractions(self):
        ops = list(generate_ops(spec(ops=20000, read_fraction=0.7,
                                     delete_fraction=0.1)))
        mix = Counter(op.op for op in ops)
        assert abs(mix[GET] / len(ops) - 0.7) < 0.03
        # deletes are a fraction of the non-read 30%.
        assert abs(mix[DELETE] / len(ops) - 0.03) < 0.01
        assert mix[PUT] == len(ops) - mix[GET] - mix[DELETE]

    def test_tenant_mix_tracks_weights(self):
        ops = list(generate_ops(spec(ops=20000)))
        mix = Counter(op.tenant for op in ops)
        assert abs(mix["alpha"] / len(ops) - 0.75) < 0.03

    def test_zipf_head_dominates(self):
        sampler = ZipfSampler(1000, s=1.1)
        rng = random.Random(7)
        draws = Counter(sampler.sample(rng) for _ in range(20000))
        top10 = sum(draws[rank] for rank in range(10))
        assert top10 / 20000 > 0.4
        assert draws[0] > draws[99] > 0

    def test_zipf_zero_is_roughly_uniform(self):
        sampler = ZipfSampler(10, s=0.0)
        rng = random.Random(7)
        draws = Counter(sampler.sample(rng) for _ in range(20000))
        assert max(draws.values()) / min(draws.values()) < 1.3

    def test_keys_are_stable_hashes_of_tenant_and_rank(self):
        for op in list(generate_ops(spec(ops=200))):
            assert op.key == page_key(f"{op.tenant}:{op.rank}")


class TestVersioning:
    def test_put_versions_count_per_key(self):
        ops = [op for op in generate_ops(spec(ops=20000))
               if op.op == PUT]
        seen = {}
        for op in ops:
            expected = seen.get((op.tenant, op.rank), -1) + 1
            assert op.version == expected
            seen[(op.tenant, op.rank)] = op.version
        assert any(op.version > 0 for op in ops)  # overwrites happen

    def test_versions_change_content_and_cycle_mod_4(self):
        pages = [page_payload("alpha", 1, v, seed=42, page_size=1024)
                 for v in range(6)]
        assert pages[0] != pages[1]
        assert pages[0] == pages[4]  # version folded mod 4
        assert pages[1] == pages[5]

    def test_get_and_delete_have_no_payload(self):
        s = spec()
        for op in generate_ops(s):
            if op.op != PUT:
                assert op.payload(s) is None


class TestPartitioning:
    def test_partition_preserves_order_and_coverage(self):
        ops = list(generate_ops(spec()))
        queues = partition_by_vslot(ops, vslots=64, clients=8)
        assert sum(len(q) for q in queues) == len(ops)
        # Per-queue order is stream order.
        position = {id(op): i for i, op in enumerate(ops)}
        for queue in queues:
            indices = [position[id(op)] for op in queue]
            assert indices == sorted(indices)

    def test_one_vslot_never_splits_across_clients(self):
        ops = list(generate_ops(spec()))
        queues = partition_by_vslot(ops, vslots=64, clients=8)
        owner = {}
        for client, queue in enumerate(queues):
            for op in queue:
                vslot = op.key % 64
                assert owner.setdefault(vslot, client) == client

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            partition_by_vslot([], vslots=64, clients=0)


class TestDiurnal:
    def test_mean_one_peak_and_trough(self):
        assert diurnal_multiplier(0.0, 0.5) == 1.0
        assert math.isclose(diurnal_multiplier(0.25, 0.5), 1.5)
        assert math.isclose(diurnal_multiplier(0.75, 0.5), 0.5)
        assert diurnal_multiplier(0.4, 0.0) == 1.0

    def test_amplitude_validated(self):
        with pytest.raises(ValueError):
            spec(diurnal_amplitude=1.0)


class TestCliGrammar:
    def test_weights_parse(self):
        weights = tenant_weights_from_spec("alpha=4:3,beta:0.5,gamma")
        assert weights == {"alpha": 3.0, "beta": 0.5, "gamma": 1.0}

    def test_traffic_validation(self):
        with pytest.raises(ValueError):
            TenantTraffic("t", weight=0.0)
        with pytest.raises(ValueError):
            TrafficSpec(ops=0)
