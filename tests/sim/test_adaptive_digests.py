"""Frozen golden digests for adaptive-selector simulation runs.

The adaptive compressor chooses a kernel per page from a learned memo,
so its simulation output depends on selection behaviour as well as on
every kernel's payload format.  These tests pin the complete
:meth:`repro.sim.engine.RunResult.as_dict` output — including the new
``selection`` counters — of adaptive runs to SHA-256 digests, the same
way ``test_golden_digests.py`` pins the default (lzrw1) runs.

Three properties are checked:

* the digests match frozen values (any change to a kernel's payload
  format, the selector's decision rule, the kind fingerprint, or the
  counter bookkeeping shows up here);
* the run is deterministic: two runs in the same process — the second
  with a warm process-wide result cache — produce identical output,
  selection counters included;
* ``fast=False`` (forced scalar kernels) produces the same digest, so
  vectorization stays wall-clock-only under the selector too.

A digest mismatch from an optimization means the optimization changed
behaviour; fix it rather than refreshing the digest.  Refreshing is
legitimate only when selection semantics change deliberately.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.compression.sampler import clear_shared_results
from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig

SCALE = 0.12

#: SHA-256 of canonical JSON (sorted keys, compact separators) of
#: RunResult.as_dict() for ``--compressor adaptive`` runs at bench_sim's
#: configuration, captured when the selector landed.
GOLDEN_ADAPTIVE = {
    "thrasher": "a7d1e3bfdb32f06f9b57a599baa64c1286c41fa3f0051b96883924151ac18955",
    "compare": "1e621cf2e54769e183524fd3be8f0d06fe61debc13a0b2c2fdfbd7ddf838c5a5",
    "gold-warm": "0c90a2ef48bb6dfdc48eef1a22063283adb55737cbd0c7f9f54614ccdad6a0b8",
}


def run_adaptive(name: str, fast=None):
    """One adaptive run at the bench_sim configuration; returns the
    RunResult."""
    from repro.cli import WORKLOAD_FACTORIES

    workload = WORKLOAD_FACTORIES[name](SCALE)
    config = MachineConfig(
        memory_bytes=mbytes(6 * SCALE), compressor="adaptive", fast=fast,
    )
    machine = Machine(config, workload.build())
    refs = list(workload.references())
    return SimulationEngine(machine).run(iter(refs))


def digest_of(result) -> str:
    blob = json.dumps(
        result.as_dict(), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize("name", sorted(GOLDEN_ADAPTIVE))
def test_adaptive_matches_frozen_digest(name):
    assert digest_of(run_adaptive(name)) == GOLDEN_ADAPTIVE[name], (
        f"{name}: adaptive-selector simulation output diverged from the "
        "frozen behaviour (kernel payloads, selection rule, or counters "
        "changed)"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_ADAPTIVE))
def test_adaptive_scalar_kernels_match_same_digest(name):
    assert digest_of(
        run_adaptive(name, fast=False)
    ) == GOLDEN_ADAPTIVE[name], (
        f"{name}: forcing scalar kernels (fast=False) changed adaptive "
        "output — candidate payloads must be bit-identical across modes"
    )


def test_adaptive_run_twice_is_deterministic():
    """Same workload, same seed, twice: identical selection counters and
    identical full output — cold and warm process-wide caches agree."""
    clear_shared_results()
    first = run_adaptive("thrasher")
    second = run_adaptive("thrasher")
    assert first.selection_counters == second.selection_counters
    assert digest_of(first) == digest_of(second)
    assert first.selection_counters is not None
    (tier_counters,) = first.selection_counters.values()
    assert tier_counters["pages"] > 0
    assert tier_counters["chosen"], "selector never chose a kernel"
