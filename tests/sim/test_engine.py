"""Simulation engine: reference streams, mutations, results."""

import pytest

from repro.mem.page import PageId, mbytes
from repro.sim.engine import PageRef, SimulationEngine, run_workload
from repro.sim.machine import Machine, MachineConfig
from repro.sim.report import format_minutes_seconds, render_series, render_table
from repro.workloads import SyntheticWorkload


def make_machine(cc=True):
    workload = SyntheticWorkload(mbytes(1), references=1)
    machine = Machine(
        MachineConfig(memory_bytes=mbytes(1), compression_cache=cc),
        workload.build(),
    )
    seg = next(machine.address_space.segments())
    return machine, seg.segment_id


class TestRun:
    def test_reads_and_writes_counted(self):
        machine, seg = make_machine()
        refs = [
            PageRef(PageId(seg, 0)),
            PageRef(PageId(seg, 1), write=True),
            PageRef(PageId(seg, 0)),
        ]
        result = SimulationEngine(machine).run(refs)
        snapshot = result.metrics_snapshot
        assert snapshot["accesses"] == 3
        assert snapshot["read_accesses"] == 2
        assert snapshot["write_accesses"] == 1
        assert result.elapsed_seconds > 0.0

    def test_default_write_mutation_dirties_content(self):
        machine, seg = make_machine()
        SimulationEngine(machine).run([PageRef(PageId(seg, 0), write=True)])
        pte = machine.address_space.entry(PageId(seg, 0))
        assert pte.content.version > 0

    def test_explicit_mutation_applied(self):
        machine, seg = make_machine()
        refs = [PageRef(
            PageId(seg, 0), write=True,
            mutate=lambda content: content.store_word(0, 1234),
        )]
        SimulationEngine(machine).run(refs)
        pte = machine.address_space.entry(PageId(seg, 0))
        assert pte.content.load_word(0) == 1234

    def test_mutation_on_read_rejected(self):
        machine, seg = make_machine()
        refs = [PageRef(PageId(seg, 0), mutate=lambda c: None)]
        with pytest.raises(ValueError):
            SimulationEngine(machine).run(refs)

    def test_compute_seconds_charged(self):
        machine, seg = make_machine()
        result = SimulationEngine(machine).run(
            [PageRef(PageId(seg, 0), compute_seconds=5.0)]
        )
        assert result.elapsed_seconds > 5.0
        assert result.time_breakdown["base"] > 5.0

    def test_max_references_truncates(self):
        machine, seg = make_machine()
        refs = (PageRef(PageId(seg, n % 4)) for n in range(100))
        result = SimulationEngine(machine).run(refs, max_references=10)
        assert result.metrics_snapshot["accesses"] == 10

    def test_run_workload_helper(self):
        workload = SyntheticWorkload(mbytes(1), references=50)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(1)), workload.build()
        )
        result = run_workload(machine, workload.references())
        assert result.metrics_snapshot["accesses"] == 50

    def test_summary_readable(self):
        workload = SyntheticWorkload(mbytes(1), references=10)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(1)), workload.build()
        )
        result = run_workload(machine, workload.references())
        assert "elapsed" in result.summary()
        assert "faults" in result.summary()


class TestObserver:
    def test_observer_called_on_period(self):
        machine, seg = make_machine()
        seen = []
        refs = [PageRef(PageId(seg, n % 4)) for n in range(25)]
        SimulationEngine(machine).run(
            refs,
            observer=lambda m, i: seen.append(i),
            observe_every=10,
        )
        assert seen == [10, 20]

    def test_observer_sees_live_machine_state(self):
        from repro.mem.page import mbytes as mb
        from repro.workloads import Thrasher

        workload = Thrasher(mb(1.2), cycles=2, write=True)
        machine = Machine(
            MachineConfig(memory_bytes=mb(0.5)), workload.build()
        )
        cache_sizes = []
        SimulationEngine(machine).run(
            workload.references(),
            observer=lambda m, i: cache_sizes.append(m.ccache.nframes),
            observe_every=64,
        )
        # The variable-sized cache grows during the run (Section 4.2).
        assert cache_sizes[-1] > cache_sizes[0]

    def test_invalid_period(self):
        machine, seg = make_machine()
        with pytest.raises(ValueError):
            SimulationEngine(machine).run([], observe_every=0)


class TestReport:
    def test_minutes_seconds(self):
        assert format_minutes_seconds(974) == "16:14"
        assert format_minutes_seconds(59.6) == "1:00"
        assert format_minutes_seconds(0) == "0:00"
        with pytest.raises(ValueError):
            format_minutes_seconds(-1)

    def test_render_table(self):
        text = render_table(
            ["app", "speedup"],
            [["compare", 2.68], ["isca", 1.6]],
            title="Table 1",
        )
        assert "Table 1" in text
        assert "compare" in text
        assert "2.68" in text

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series(self):
        text = render_series("cc_ro", [1, 2], [3.5, 4.5],
                             x_label="MB", y_label="ms")
        assert "cc_ro" in text
        assert "MB" in text
        with pytest.raises(ValueError):
            render_series("bad", [1], [1, 2])
