"""Golden-equivalence digests for the simulator hot-path overhaul.

Every optimization of the per-reference path (engine, VM, LRU, allocator,
compression cache, fragment store, sampler) must be *semantics-preserving*:
fault counts, elapsed virtual seconds, every counter, and the sweep digests
may not move by a single bit.  These tests pin the complete
:meth:`repro.sim.engine.RunResult.as_dict` output of each benchmark
workload — the same workload/machine configurations ``repro perf`` times
for ``BENCH_sim.json`` — to SHA-256 digests captured on the unoptimized
tree immediately before the overhaul.

A digest mismatch means an "optimization" changed simulation behaviour;
fix the optimization, do not refresh the digest.  (Refreshing is only
legitimate when simulation *semantics* change deliberately, in a PR whose
point is a behaviour change.)

The memo-mode runs use the exact ``bench_sim`` configuration (scale 0.12).
The exact-compression runs — where every measurement invokes the real
kernel, no memoization — run at a reduced scale to keep tier-1 wall-clock
in budget while still driving every fault/evict/clean/GC path.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig

#: bench_sim's configuration: memory scales with the workload footprint.
MEMO_SCALE = 0.12
EXACT_SCALE = 0.06

#: SHA-256 of canonical JSON (sorted keys, compact separators) of
#: RunResult.as_dict(), captured pre-optimization.
GOLDEN_MEMO = {
    "compare": "68847ee9b40424e2af14039cb1112f40fe385e82aaf0680c41de853199f858b6",
    "gold-warm": "5a728cf9ca7bb0bac0d20c87f1b0e95d9942bd5392b7385477d62ce6e6a4bb3b",
    "isca": "4dac2ea74979c1aec367aabf73aa8bf2712f901c05285c8eee9afc8f3af8cf12",
    "sort-partial": "6102318aef8b043c626017a155455f9e67f6497a748cd17aa79f1afe4fe0fd2e",
    "sort-random": "a88d2ac222daebfac0d604ee8e334a6a963edb373800d1d9fb0abd548ebe9cb9",
    "synthetic": "df246c2c822abff410d1d83c1b3e3a87d790c2b413ccefc287ce80a1fae1a131",
    "thrasher": "f8963fd54e8f851c6a49ec61ea29538e2d3e02aee71c25e3e950d852c810d35c",
}

GOLDEN_EXACT = {
    "compare": "ca7919d5b65682784a284113ffedfdd1e37313da9c476030e49e3fee280f4a2e",
    "gold-warm": "4b74a83bdd2d249ef6b3422281b46d2df4b053a1179ddc98c6fcfc43da95614a",
    "isca": "d8807affc1a78693102339a071410d42cbcc93c37c5990688d4f9279c4b9a08c",
    "sort-partial": "76d6441ff46acde3363290676a783c07c8c9895ee2f3ba51f14c00f476b7e93e",
    "sort-random": "8152283a97ecbb4437484867a446b86c54fe84ad3426922f32b31cef3f18c0cb",
    "synthetic": "6c6db5e4b88ac2ab7d5cbf64210f51dc2a696060f6370dd8725ea0fc5ba1967c",
    "thrasher": "4b5e1120e45848063f5712247b89dcc09c3c6ab6901ceb572a8b3633089792bf",
}


def run_digest(name: str, scale: float, exact: bool,
               fast=None) -> str:
    """Build the bench_sim machine for ``name`` and digest its RunResult."""
    from repro.cli import WORKLOAD_FACTORIES

    workload = WORKLOAD_FACTORIES[name](scale)
    config = MachineConfig(
        memory_bytes=mbytes(6 * scale), exact_compression=exact,
        fast=fast,
    )
    machine = Machine(config, workload.build())
    refs = list(workload.references())
    result = SimulationEngine(machine).run(iter(refs))
    blob = json.dumps(
        result.as_dict(), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize("name", sorted(GOLDEN_MEMO))
def test_memo_mode_matches_preoptimization_digest(name):
    assert run_digest(name, MEMO_SCALE, exact=False) == GOLDEN_MEMO[name], (
        f"{name}: simulation output diverged from the pre-optimization "
        "behaviour (memoized sampler, bench_sim configuration)"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_EXACT))
def test_exact_mode_matches_preoptimization_digest(name):
    assert run_digest(name, EXACT_SCALE, exact=True) == GOLDEN_EXACT[name], (
        f"{name}: simulation output diverged from the pre-optimization "
        "behaviour (exact compression, no memoization)"
    )


# The default runs above use fast=None — vectorized kernels whenever
# numpy is importable — so on a numpy host they already pin the fast
# variant against digests captured on the scalar tree.  The forced-
# scalar runs below close the loop from the other side: the same digests
# with fast=False, proving MachineConfig.fast moves host wall-clock
# only.  Memo mode covers every workload (cheap: the shared kernel-
# result cache is warm); exact mode — where every reference invokes the
# real scalar kernel, no sharing — covers a subset to keep tier-1
# wall-clock in budget.

@pytest.mark.parametrize("name", sorted(GOLDEN_MEMO))
def test_memo_mode_scalar_kernels_match_same_digest(name):
    assert run_digest(
        name, MEMO_SCALE, exact=False, fast=False
    ) == GOLDEN_MEMO[name], (
        f"{name}: forcing scalar kernels (fast=False) changed simulation "
        "output — the fast flag must be wall-clock only"
    )


@pytest.mark.parametrize("name", ["thrasher", "compare"])
def test_exact_mode_scalar_kernels_match_same_digest(name):
    assert run_digest(
        name, EXACT_SCALE, exact=True, fast=False
    ) == GOLDEN_EXACT[name], (
        f"{name}: forcing scalar kernels (fast=False) changed simulation "
        "output in exact mode — scalar and vectorized kernels diverged"
    )
