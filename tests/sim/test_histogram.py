"""Latency histograms and fault-latency integration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.histogram import LatencyHistogram


class TestHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0
        assert histogram.samples == 0

    def test_mean_and_max(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.record(value)
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.max_value == 0.003

    def test_percentiles_bound_samples(self):
        histogram = LatencyHistogram()
        for _ in range(90):
            histogram.record(0.001)   # fast decompressions
        for _ in range(10):
            histogram.record(0.030)   # disk seeks
        p50 = histogram.percentile(50)
        p99 = histogram.percentile(99)
        assert p50 <= 0.003           # within a bucket of 1 ms
        assert p99 >= 0.015           # the tail is the disk

    def test_summary_keys(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        summary = histogram.summary()
        assert set(summary) == {
            "samples", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(smallest=0)
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(150)

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200,
    ))
    def test_percentile_upper_bounds_true_quantile(self, values):
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        ordered = sorted(values)
        for p in (50.0, 90.0, 99.0):
            index = min(len(ordered) - 1,
                        max(0, int(p / 100.0 * len(ordered) + 0.999) - 1))
            true_quantile = ordered[index]
            # Bucketed percentile never under-reports by more than the
            # bucket floor.
            assert histogram.percentile(p) >= min(
                true_quantile, histogram.smallest
            ) / histogram.base

    def test_nonzero_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(0.001)
        histogram.record(0.001)
        histogram.record(1.0)
        buckets = histogram.nonzero_buckets()
        assert sum(count for _, count in buckets) == 3


class TestFaultLatencyIntegration:
    def test_cache_collapses_median_fault_latency(self):
        """The compression cache's signature: p50 falls from a disk seek
        to a decompression; the deep tail only moves if I/O vanishes."""
        from repro.mem.page import mbytes
        from repro.sim.engine import SimulationEngine
        from repro.sim.machine import Machine, MachineConfig
        from repro.workloads import Thrasher

        latencies = {}
        for compression_cache in (False, True):
            workload = Thrasher(mbytes(1.2), cycles=3, write=True)
            machine = Machine(
                MachineConfig(memory_bytes=mbytes(0.5),
                              compression_cache=compression_cache),
                workload.build(),
            )
            result = SimulationEngine(machine).run(workload.references())
            latencies[compression_cache] = result.metrics_snapshot[
                "fault_latency"
            ]
        assert latencies[True]["p50_ms"] < latencies[False]["p50_ms"] / 3
        assert latencies[True]["mean_ms"] < latencies[False]["mean_ms"]
