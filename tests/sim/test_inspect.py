"""State rendering (the Figure 2 diagram and friends)."""

from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.inspect import (
    render_cache_figure,
    render_machine,
    render_memory_split,
)
from repro.sim.machine import Machine, MachineConfig
from repro.workloads import Thrasher


def run_machine(cc=True):
    workload = Thrasher(mbytes(1.2), cycles=2, write=True)
    machine = Machine(
        MachineConfig(memory_bytes=mbytes(0.5), compression_cache=cc),
        workload.build(),
    )
    SimulationEngine(machine).run(workload.references())
    return machine


class TestCacheFigure:
    def test_states_rendered(self):
        machine = run_machine()
        text = render_cache_figure(machine.ccache)
        assert "compressed pages" in text
        assert "legend" in text
        # Under write pressure the map holds clean and/or dirty slots.
        body = text.splitlines()[1:-1]
        glyphs = "".join(line.split()[-1] for line in body if line.strip())
        assert any(glyph in glyphs for glyph in "CDn")

    def test_empty_cache(self):
        workload = Thrasher(mbytes(0.1), cycles=1)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5)), workload.build()
        )
        text = render_cache_figure(machine.ccache)
        assert "(empty)" in text

    def test_row_wrapping(self):
        machine = run_machine()
        text = render_cache_figure(machine.ccache, slots_per_row=8)
        body = [line for line in text.splitlines()
                if line.strip() and line.strip()[0].isdigit()]
        assert all(len(line.split()[-1]) <= 8 for line in body)


class TestMemorySplit:
    def test_bar_accounts_for_everything(self):
        machine = run_machine()
        text = render_memory_split(machine.frames)
        assert "uncompressed VM" in text
        assert "compressed" in text
        split = machine.frames.split()
        for key in ("vm", "cc", "fs", "free"):
            assert str(split[key]) in text

    def test_bar_width(self):
        machine = run_machine()
        bar_line = render_memory_split(machine.frames, width=40).splitlines()[0]
        assert len(bar_line) == 42  # width + brackets


class TestMachineSnapshot:
    def test_full_render(self):
        machine = run_machine()
        text = render_machine(machine)
        assert "machine:" in text
        assert "compression cache:" in text
        assert "device:" in text

    def test_std_machine_renders_without_cache(self):
        machine = run_machine(cc=False)
        text = render_machine(machine)
        assert "compression cache:" not in text
