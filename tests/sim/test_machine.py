"""Machine wiring and configuration."""

import pytest

from repro.mem.page import mbytes
from repro.sim.machine import DEVICE_PRESETS, Machine, MachineConfig
from repro.vm.compressed import CompressedVM
from repro.vm.faults import VmConfigurationError
from repro.vm.standard import StandardVM
from repro.workloads import SyntheticWorkload


def build(config, space_mb=2):
    workload = SyntheticWorkload(mbytes(space_mb), references=1)
    return Machine(config, workload.build())


class TestConstruction:
    def test_compression_cache_machine(self):
        machine = build(MachineConfig(memory_bytes=mbytes(1)))
        assert isinstance(machine.vm, CompressedVM)
        assert machine.ccache is not None
        assert machine.fragstore is not None

    def test_baseline_machine(self):
        machine = build(
            MachineConfig(memory_bytes=mbytes(1), compression_cache=False)
        )
        assert isinstance(machine.vm, StandardVM)
        assert machine.ccache is None

    def test_variant_and_baseline_helpers(self):
        config = MachineConfig(memory_bytes=mbytes(4))
        baseline = config.baseline()
        assert not baseline.compression_cache
        assert baseline.memory_bytes == config.memory_bytes
        assert config.variant(compressor="lzss").compressor == "lzss"

    def test_all_device_presets_buildable(self):
        for name in DEVICE_PRESETS:
            machine = build(
                MachineConfig(memory_bytes=mbytes(1), device=name)
            )
            assert machine.device is not None

    def test_unknown_device_rejected(self):
        with pytest.raises(VmConfigurationError):
            build(MachineConfig(memory_bytes=mbytes(1), device="ssd9000"))

    def test_lfs_filesystem(self):
        from repro.storage.lfs import LogStructuredFS

        machine = build(MachineConfig(memory_bytes=mbytes(1),
                                      filesystem="lfs"))
        assert isinstance(machine.fs, LogStructuredFS)

    def test_unknown_filesystem_rejected(self):
        with pytest.raises(VmConfigurationError):
            build(MachineConfig(memory_bytes=mbytes(1), filesystem="zfs"))

    def test_lfs_machine_runs_both_systems(self):
        from repro.sim.engine import SimulationEngine
        from repro.workloads import Thrasher

        for compression_cache in (False, True):
            workload = Thrasher(mbytes(1), cycles=2, write=True)
            machine = Machine(
                MachineConfig(memory_bytes=mbytes(0.5), filesystem="lfs",
                              compression_cache=compression_cache),
                workload.build(),
            )
            result = SimulationEngine(machine).run(workload.references())
            assert result.metrics_snapshot["faults"]["total"] > 0

    def test_too_little_memory_rejected(self):
        with pytest.raises(VmConfigurationError):
            build(MachineConfig(memory_bytes=8192))

    def test_page_size_mismatch_rejected(self):
        workload = SyntheticWorkload(mbytes(1), references=1,
                                     page_size=8192)
        with pytest.raises(VmConfigurationError):
            Machine(MachineConfig(memory_bytes=mbytes(1)), workload.build())


class TestMetadataOverhead:
    def test_cc_machine_has_fewer_user_frames(self):
        """Section 4.4's overheads cost the CC configuration real memory."""
        cc = build(MachineConfig(memory_bytes=mbytes(1)))
        std = build(
            MachineConfig(memory_bytes=mbytes(1), compression_cache=False)
        )
        assert cc.user_frames < std.user_frames

    def test_overhead_scales_with_address_space(self):
        small = build(MachineConfig(memory_bytes=mbytes(1)), space_mb=1)
        large = build(MachineConfig(memory_bytes=mbytes(1)), space_mb=16)
        assert large.user_frames < small.user_frames


class TestMeasurementReset:
    def test_reset_clears_metrics_keeps_state(self):
        from repro.sim.engine import SimulationEngine
        from repro.workloads import Thrasher

        workload = Thrasher(300 * 4096, cycles=1, write=True)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(1)), workload.build()
        )
        engine = SimulationEngine(machine)
        engine.run(workload.references())
        resident_before = machine.vm.resident_pages
        machine.reset_measurement()
        assert machine.vm.metrics.accesses == 0
        assert machine.ledger.total() == 0.0
        assert machine.vm.resident_pages == resident_before
        assert machine.ledger.now > 0.0  # clock keeps running


class TestConfigValidation:
    """Non-positive sizes and rates are rejected up front."""

    def test_rejects_nonpositive_sizes(self):
        import pytest

        from repro.sim.machine import MachineConfig

        for field_name in ("memory_bytes", "page_size", "fragment_size",
                           "batch_bytes"):
            with pytest.raises(ValueError, match=field_name):
                MachineConfig(**{field_name: 0})
            with pytest.raises(ValueError, match=field_name):
                MachineConfig(**{field_name: -4096})

    def test_rejects_nonpositive_threshold(self):
        import pytest

        from repro.sim.machine import MachineConfig

        with pytest.raises(ValueError, match="threshold_factor"):
            MachineConfig(threshold_factor=0.0)

    def test_device_models_validate(self):
        import pytest

        from repro.storage.disk import DiskModel
        from repro.storage.network import NetworkModel

        with pytest.raises(ValueError, match="bandwidth"):
            DiskModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError, match="rpm"):
            DiskModel(rpm=-1)
        with pytest.raises(ValueError, match="fixed_overhead_ms"):
            DiskModel(fixed_overhead_ms=-0.5)
        with pytest.raises(ValueError, match="bandwidth"):
            NetworkModel(bandwidth_bits_per_s=-1)
        with pytest.raises(ValueError, match="rpc_overhead_ms"):
            NetworkModel(rpc_overhead_ms=-2.0)
        with pytest.raises(ValueError, match="per_packet_ms"):
            NetworkModel(per_packet_ms=-0.1)
