"""Machine-level properties of the log-structured backing store.

The LFS is selectable via ``MachineConfig(store="lfs")`` and must be
(a) deterministic run-to-run, (b) digest-equal under crash/recovery at
every kill site — the whole-machine version of the store-level property
in ``tests/storage/test_logstore_crash.py`` — and (c) genuinely driven
by the benchmark workloads (pages appended, segments cleaned).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.storage.logstore import LogStoreConfig, LogStructuredStore

SCALE = 0.12

#: Small segments so the thrasher working set spans many segments and
#: the cleaner actually runs inside a tier-1-sized simulation.
STORE = dict(segment_bytes=8192, total_segments=512)


def run_machine(workload_name: str, kill=None):
    from repro.cli import WORKLOAD_FACTORIES

    workload = WORKLOAD_FACTORIES[workload_name](SCALE)
    config = MachineConfig(
        memory_bytes=mbytes(6 * SCALE),
        store="lfs",
        log_store=LogStoreConfig(sync_appends=True, kill=kill, **STORE),
    )
    machine = Machine(config, workload.build())
    result = SimulationEngine(machine).run(workload.references())
    return machine, result


def digest(result) -> str:
    blob = json.dumps(
        result.as_dict(), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.fixture(scope="module")
def thrasher_reference():
    machine, result = run_machine("thrasher")
    return machine, digest(result)


def test_lfs_machine_uses_log_store(thrasher_reference):
    machine, _ = thrasher_reference
    store = machine.fragstore
    assert isinstance(store, LogStructuredStore)
    assert store.counters.pages_put > 0
    assert store.counters.segments_cleaned > 0, (
        "thrasher at this scale must exercise the cleaner"
    )
    assert store.counters.checkpoints_written > 0


def test_lfs_machine_is_deterministic(thrasher_reference):
    _, ref = thrasher_reference
    _, result = run_machine("thrasher")
    assert digest(result) == ref


@pytest.mark.parametrize("kill", [
    "append:5:0.5",
    "clean:1:0.5",
    "checkpoint:1:0.5",
])
def test_killed_run_digest_equals_uninterrupted(kill, thrasher_reference):
    _, ref = thrasher_reference
    machine, result = run_machine("thrasher", kill=kill)
    store = machine.fragstore
    assert store._kill is None, f"{kill} never fired at this scale"
    assert store.recovery.recoveries >= 1
    assert digest(result) == ref, f"digest diverged after {kill}"


def test_lfs_differs_from_fragment_store_digest(thrasher_reference):
    # The two stores have different timing/layout behaviour; equal
    # digests would suggest the store switch is not actually wired in.
    from repro.cli import WORKLOAD_FACTORIES

    _, lfs_digest = thrasher_reference
    workload = WORKLOAD_FACTORIES["thrasher"](SCALE)
    config = MachineConfig(memory_bytes=mbytes(6 * SCALE))
    machine = Machine(config, workload.build())
    result = SimulationEngine(machine).run(workload.references())
    assert digest(result) != lfs_digest
