"""Clock, ledger, and cost model."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.ledger import Ledger, TimeCategory


class TestClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        assert clock.now == 1.5

    def test_start_offset(self):
        assert VirtualClock(10.0).now == 10.0

    def test_never_rewinds(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)


class TestLedger:
    def test_charge_advances_clock(self):
        ledger = Ledger()
        ledger.charge(TimeCategory.IO_READ, 2.0)
        assert ledger.now == 2.0
        assert ledger.total(TimeCategory.IO_READ) == 2.0
        assert ledger.total() == 2.0

    def test_breakdown_skips_zero_categories(self):
        ledger = Ledger()
        ledger.charge(TimeCategory.COMPRESS, 1.0)
        assert ledger.breakdown() == {"compress": 1.0}

    def test_reset_totals_keeps_clock(self):
        ledger = Ledger()
        ledger.charge(TimeCategory.BASE, 3.0)
        ledger.reset_totals()
        assert ledger.total() == 0.0
        assert ledger.now == 3.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Ledger().charge(TimeCategory.BASE, -1.0)


class TestCostModel:
    def test_decompression_twice_as_fast(self):
        """The Figure 1 caption's LZRW1 assumption."""
        costs = CostModel()
        assert costs.decompress_seconds(4096) == pytest.approx(
            costs.compress_seconds(4096) / 2.0
        )

    def test_compression_much_faster_than_disk_io(self):
        """Section 3's premise on the measured platform."""
        from repro.storage.disk import DiskModel

        costs = CostModel.decstation_5000_200()
        compress = costs.compress_seconds(4096)
        io = DiskModel.rz57().read(4096)
        assert compress < io / 5

    def test_hardware_compression_preset(self):
        default = CostModel()
        hardware = CostModel.hardware_compression()
        assert hardware.compress_bandwidth > 10 * default.compress_bandwidth

    def test_faster_cpu_scales_everything(self):
        fast = CostModel.faster_cpu(4.0)
        base = CostModel()
        assert fast.compress_bandwidth == 4 * base.compress_bandwidth
        assert fast.fault_trap_s == base.fault_trap_s / 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CostModel(compress_bandwidth=0)
        with pytest.raises(ValueError):
            CostModel(decompress_speedup=0)
        with pytest.raises(ValueError):
            CostModel.faster_cpu(0)

    def test_copy_seconds(self):
        costs = CostModel(copy_bandwidth=1e6)
        assert costs.copy_seconds(1_000_000) == pytest.approx(1.0)
