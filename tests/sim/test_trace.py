"""Trace recording, serialization, replay."""

import io

import pytest

from repro.mem.page import PageId, mbytes
from repro.sim.engine import PageRef, SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.sim.trace import Trace, TraceFormatError
from repro.workloads import SyntheticWorkload, Thrasher


class TestRecord:
    def test_record_drops_mutations(self):
        workload = Thrasher(4 * 4096, cycles=1, write=True)
        workload.build()
        trace = Trace.record(workload.references())
        assert len(trace) == 4
        assert all(ref.mutate is None for ref in trace)
        assert all(ref.write for ref in trace)

    def test_record_caps_events(self):
        workload = Thrasher(8 * 4096, cycles=4)
        workload.build()
        trace = Trace.record(workload.references(), max_events=10)
        assert len(trace) == 10

    def test_statistics(self):
        refs = [
            PageRef(PageId(0, 0), write=True),
            PageRef(PageId(0, 1)),
            PageRef(PageId(0, 0)),
        ]
        trace = Trace(refs)
        assert trace.write_fraction == pytest.approx(1 / 3)
        assert trace.touched_pages() == 2


class TestSerialization:
    def test_round_trip(self):
        refs = [
            PageRef(PageId(0, 3), write=True, compute_seconds=0.0025),
            PageRef(PageId(1, 7)),
        ]
        buffer = io.StringIO()
        Trace(refs).dump(buffer)
        buffer.seek(0)
        restored = Trace.load(buffer)
        assert len(restored) == 2
        assert restored.refs[0].page_id == PageId(0, 3)
        assert restored.refs[0].write
        assert restored.refs[0].compute_seconds == pytest.approx(0.0025)
        assert restored.refs[1].page_id == PageId(1, 7)
        assert not restored.refs[1].write

    def test_file_round_trip(self, tmp_path):
        workload = SyntheticWorkload(mbytes(1), references=50)
        workload.build()
        trace = Trace.record(workload.references())
        path = tmp_path / "trace.txt"
        trace.dump(path)
        restored = Trace.load(path)
        assert [(r.page_id, r.write) for r in restored] == [
            (r.page_id, r.write) for r in trace
        ]

    def test_bad_header(self):
        with pytest.raises(TraceFormatError):
            Trace.load(io.StringIO("not a trace\n"))

    def test_bad_flags(self):
        with pytest.raises(TraceFormatError):
            Trace.load(io.StringIO("#repro-trace v1 1\n0 0 x\n"))

    def test_truncated(self):
        with pytest.raises(TraceFormatError):
            Trace.load(io.StringIO("#repro-trace v1 5\n0 0 r\n"))

    def test_bad_page_id(self):
        with pytest.raises(TraceFormatError):
            Trace.load(io.StringIO("#repro-trace v1 1\na b r\n"))


class TestReplay:
    def test_replay_matches_live_run(self):
        """A recorded trace replayed through the engine produces the same
        fault counts as the live workload (writes replay with the default
        mutation, preserving dirtiness)."""
        def build():
            workload = SyntheticWorkload(
                mbytes(1), references=400, seed=5, write_fraction=0.4
            )
            workload.build()
            return workload

        live_workload = build()
        live_machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5), compression_cache=False),
            live_workload.build(),
        )
        live = SimulationEngine(live_machine).run(live_workload.references())

        trace_workload = build()
        trace = Trace.record(trace_workload.references())
        replay_workload = build()
        replay_machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5), compression_cache=False),
            replay_workload.build(),
        )
        replay = SimulationEngine(replay_machine).run(iter(trace))
        assert (
            replay.metrics_snapshot["faults"]["total"]
            == live.metrics_snapshot["faults"]["total"]
        )
