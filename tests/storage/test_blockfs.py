"""Whole-block file system: RMW semantics, head tracking, data fidelity."""

import pytest

from repro.storage.blockfs import BlockFileSystem, PartialWritePolicy
from repro.storage.disk import DiskModel


@pytest.fixture
def fs():
    return BlockFileSystem(DiskModel.rz57())


class TestDataFidelity:
    def test_write_read_round_trip(self, fs):
        f = fs.open("data")
        payload = bytes(range(256)) * 16  # one block
        fs.write(f, 0, payload)
        data, _ = fs.read(f, 0, 4096)
        assert data == payload

    def test_partial_read(self, fs):
        f = fs.open("data")
        fs.write(f, 0, b"A" * 4096)
        data, _ = fs.read(f, 100, 50)
        assert data == b"A" * 50

    def test_holes_read_as_zeros(self, fs):
        f = fs.open("data")
        fs.write(f, 8192, b"B" * 4096)
        data, _ = fs.read(f, 0, 4096)
        assert data == bytes(4096)

    def test_spanning_write(self, fs):
        f = fs.open("data")
        payload = bytes(i & 0xFF for i in range(10000))
        fs.write(f, 2000, payload)
        data, _ = fs.read(f, 2000, 10000)
        assert data == payload

    def test_overwrite_part_of_block(self, fs):
        f = fs.open("data")
        fs.write(f, 0, b"A" * 4096)
        fs.write(f, 1000, b"B" * 100)
        data, _ = fs.read(f, 0, 4096)
        assert data[999:1101] == b"A" + b"B" * 100 + b"A"

    def test_open_same_name_returns_same_file(self, fs):
        assert fs.open("x") is fs.open("x")
        assert fs.open("x") is not fs.open("y")

    def test_truncate(self, fs):
        f = fs.open("data")
        fs.write(f, 0, b"C" * 8192)
        fs.truncate(f, 4096)
        assert f.size == 4096
        data, _ = fs.read(f, 4096, 4096)
        assert data == bytes(4096)


class TestWholeBlockSemantics:
    def test_partial_read_transfers_whole_block(self, fs):
        f = fs.open("data")
        fs.write(f, 0, b"A" * 4096)
        before = fs.device.counters.bytes_read
        fs.read(f, 0, 100)
        assert fs.device.counters.bytes_read - before == 4096

    def test_partial_overwrite_costs_read_modify_write(self):
        """Section 4.3: a 2-KByte write becomes a 4-KByte read plus a
        4-KByte write."""
        fs = BlockFileSystem(DiskModel.rz57())
        f = fs.open("swap")
        fs.write(f, 0, b"A" * 4096)
        reads_before = fs.device.counters.bytes_read
        writes_before = fs.device.counters.bytes_written
        fs.write(f, 0, b"B" * 2048)
        assert fs.device.counters.bytes_read - reads_before == 4096
        assert fs.device.counters.bytes_written - writes_before == 4096
        assert fs.counters.rmw_reads == 1

    def test_overwrite_policy_writes_only_the_bytes(self):
        fs = BlockFileSystem(
            DiskModel.rz57(),
            partial_write_policy=PartialWritePolicy.OVERWRITE,
        )
        f = fs.open("swap")
        fs.write(f, 0, b"A" * 4096)
        reads_before = fs.device.counters.bytes_read
        writes_before = fs.device.counters.bytes_written
        fs.write(f, 0, b"B" * 2048)
        assert fs.device.counters.bytes_read == reads_before
        assert fs.device.counters.bytes_written - writes_before == 2048

    def test_whole_block_policy_pads_without_reading(self):
        fs = BlockFileSystem(
            DiskModel.rz57(),
            partial_write_policy=PartialWritePolicy.WHOLE_BLOCK,
        )
        f = fs.open("swap")
        fs.write(f, 0, b"A" * 4096)
        reads_before = fs.device.counters.bytes_read
        writes_before = fs.device.counters.bytes_written
        fs.write(f, 0, b"B" * 2048)
        assert fs.device.counters.bytes_read == reads_before
        assert fs.device.counters.bytes_written - writes_before == 4096

    def test_append_never_triggers_rmw(self, fs):
        """The last-block-in-a-file exception."""
        f = fs.open("log")
        fs.write(f, 0, b"A" * 1000)
        fs.write(f, 1000, b"B" * 1000)
        assert fs.counters.rmw_reads == 0

    def test_aligned_full_block_write_never_rmw(self, fs):
        f = fs.open("swap")
        fs.write(f, 0, b"A" * 4096)
        fs.write(f, 0, b"B" * 4096)  # overwrite whole block
        assert fs.counters.rmw_reads == 0


class TestHeadTracking:
    def test_sequential_reads_detected(self, fs):
        f = fs.open("swap")
        fs.write(f, 0, b"A" * 16384)
        fs.read(f, 0, 4096)
        seeks_before = fs.device.counters.seeks
        fs.read(f, 4096, 4096)  # continues where the last op ended
        assert fs.device.counters.seeks == seeks_before

    def test_alternating_files_always_seek(self, fs):
        a, b = fs.open("a"), fs.open("b")
        fs.write(a, 0, b"A" * 4096)
        fs.write(b, 0, b"B" * 4096)
        seeks_before = fs.device.counters.seeks
        fs.read(a, 0, 4096)
        fs.read(b, 0, 4096)
        fs.read(a, 4096, 0) if False else None
        assert fs.device.counters.seeks - seeks_before == 2

    def test_thrashing_pattern_two_seeks_per_fault(self, fs):
        """Section 5.1: the unmodified system's write-out/read-in pair
        seeks twice per fault."""
        f = fs.open("swap")
        for page in range(8):
            fs.write(f, page * 4096, b"W" * 4096)
        seeks_before = fs.device.counters.seeks
        fs.write(f, 0 * 4096, b"X" * 4096)   # page-out
        fs.read(f, 5 * 4096, 4096)           # page-in elsewhere
        assert fs.device.counters.seeks - seeks_before == 2


class TestValidation:
    def test_negative_offset_rejected(self, fs):
        f = fs.open("x")
        with pytest.raises(ValueError):
            fs.read(f, -1, 10)
        with pytest.raises(ValueError):
            fs.write(f, -1, b"z")

    def test_zero_length_ops_free(self, fs):
        f = fs.open("x")
        data, seconds = fs.read(f, 0, 0)
        assert data == b"" and seconds == 0.0
        assert fs.write(f, 0, b"") == 0.0

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockFileSystem(DiskModel.rz57(), block_size=0)
