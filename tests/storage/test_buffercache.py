"""Buffer cache: hits, misses, eviction, write-back."""

import pytest

from repro.mem.frames import FramePool
from repro.storage.blockfs import BlockFileSystem
from repro.storage.buffercache import BufferCache
from repro.storage.disk import DiskModel


def make_cache(nframes=4):
    fs = BlockFileSystem(DiskModel.rz57())
    frames = FramePool(nframes)
    return BufferCache(fs, frames), fs, frames


class TestHitsAndMisses:
    def test_miss_then_hit(self):
        cache, fs, _ = make_cache()
        f = fs.open("data")
        miss_cost = cache.access(f, 0, now=0.0)
        hit_cost = cache.access(f, 0, now=1.0)
        assert miss_cost > 0.0
        assert hit_cost == 0.0
        assert cache.counters.hits == 1
        assert cache.counters.misses == 1
        assert cache.counters.hit_rate == 0.5

    def test_distinct_blocks_distinct_entries(self):
        cache, fs, _ = make_cache()
        f = fs.open("data")
        cache.access(f, 0, now=0.0)
        cache.access(f, 1, now=1.0)
        assert cache.nblocks == 2

    def test_distinct_files_distinct_entries(self):
        cache, fs, _ = make_cache()
        a, b = fs.open("a"), fs.open("b")
        cache.access(a, 0, now=0.0)
        cache.access(b, 0, now=1.0)
        assert cache.nblocks == 2


class TestEviction:
    def test_self_service_eviction_at_capacity(self):
        cache, fs, frames = make_cache(nframes=2)
        f = fs.open("data")
        for block in range(4):
            cache.access(f, block, now=float(block))
        assert cache.nblocks == 2
        assert frames.free_frames == 0

    def test_lru_block_evicted_first(self):
        cache, fs, _ = make_cache(nframes=2)
        f = fs.open("data")
        cache.access(f, 0, now=0.0)
        cache.access(f, 1, now=1.0)
        cache.access(f, 0, now=2.0)  # touch block 0
        cache.access(f, 2, now=3.0)  # evicts block 1
        before = cache.counters.misses
        cache.access(f, 0, now=4.0)
        assert cache.counters.misses == before  # still cached

    def test_dirty_eviction_writes_back(self):
        cache, fs, _ = make_cache(nframes=1)
        f = fs.open("data")
        cache.access(f, 0, now=0.0, write=True)
        writes_before = fs.device.counters.writes
        cache.access(f, 1, now=1.0)  # evicts dirty block 0
        assert fs.device.counters.writes > writes_before
        assert cache.counters.writebacks == 1

    def test_clean_eviction_is_free(self):
        cache, fs, _ = make_cache(nframes=1)
        f = fs.open("data")
        cache.access(f, 0, now=0.0)
        cache.access(f, 1, now=1.0)
        assert cache.counters.writebacks == 0

    def test_shrink_one_empty_returns_none(self):
        cache, _, _ = make_cache()
        assert cache.shrink_one() is None

    def test_shrink_releases_frame(self):
        cache, fs, frames = make_cache()
        f = fs.open("data")
        cache.access(f, 0, now=0.0)
        free_before = frames.free_frames
        cache.shrink_one()
        assert frames.free_frames == free_before + 1


class TestFlush:
    def test_flush_writes_all_dirty(self):
        cache, fs, _ = make_cache()
        f = fs.open("data")
        cache.access(f, 0, now=0.0, write=True)
        cache.access(f, 1, now=1.0, write=True)
        cache.access(f, 2, now=2.0)
        seconds = cache.flush()
        assert seconds > 0.0
        assert cache.counters.writebacks == 2
        assert cache.flush() == 0.0  # now clean


class TestAges:
    def test_coldest_age(self):
        cache, fs, _ = make_cache()
        f = fs.open("data")
        cache.access(f, 0, now=10.0)
        cache.access(f, 1, now=20.0)
        assert cache.coldest_age(30.0) == pytest.approx(20.0)

    def test_empty_cache_age_is_none(self):
        cache, _, _ = make_cache()
        assert cache.coldest_age(0.0) is None
