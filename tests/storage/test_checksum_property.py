"""Property test: CRC32 verify-on-read catches every single-bit flip.

CRC32's generator polynomial detects all single-bit errors, so *any*
injected one-bit corruption of a fragment payload must raise
:class:`FragmentChecksumError` — the VM can never receive corrupted
bytes from the fragment store.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.degrade import ResilienceCounters
from repro.faults.errors import FragmentChecksumError
from repro.mem.page import PageId
from repro.storage.blockfs import BlockFileSystem
from repro.storage.disk import DiskModel
from repro.storage.fragstore import FragmentStore


class OneBitFlipper:
    """Deterministic injector stub: flips exactly one chosen bit."""

    def __init__(self, bit_index: int, sticky: bool = False):
        self.bit_index = bit_index
        self.sticky = sticky
        self.armed = True

    def corrupt_fragment(self, payload: bytes):
        if not self.armed:
            return None
        self.armed = False
        bit = self.bit_index % (len(payload) * 8)
        corrupted = bytearray(payload)
        corrupted[bit >> 3] ^= 1 << (bit & 7)
        return bytes(corrupted), self.sticky


def make_store(injector):
    fs = BlockFileSystem(DiskModel.rz57())
    return FragmentStore(fs, resilience=ResilienceCounters(),
                         injector=injector)


@given(
    payload=st.binary(min_size=1, max_size=4096),
    bit_index=st.integers(min_value=0, max_value=4096 * 8 - 1),
    flushed=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_single_bit_flip_always_detected(payload, bit_index, flushed):
    injector = OneBitFlipper(bit_index)
    store = make_store(injector)
    page = PageId(0, 1)
    store.put(page, payload)
    if flushed:
        store.flush()
    with pytest.raises(FragmentChecksumError) as excinfo:
        store.get(page)
    # The error reports the mismatch, and no corrupted bytes escaped.
    assert excinfo.value.page_id == page
    assert excinfo.value.expected_crc != excinfo.value.actual_crc
    assert store.resilience.crc_failures == 1


@given(
    payload=st.binary(min_size=1, max_size=2048),
    bit_index=st.integers(min_value=0, max_value=2048 * 8 - 1),
)
@settings(max_examples=30, deadline=None)
def test_transient_flip_recovers_on_reread(payload, bit_index):
    store = make_store(OneBitFlipper(bit_index, sticky=False))
    page = PageId(0, 1)
    store.put(page, payload)
    with pytest.raises(FragmentChecksumError):
        store.get(page)
    restored, _, _ = store.get(page)  # injector disarmed: clean re-read
    assert restored == payload


@given(
    payload=st.binary(min_size=1, max_size=2048),
    bit_index=st.integers(min_value=0, max_value=2048 * 8 - 1),
)
@settings(max_examples=30, deadline=None)
def test_sticky_flip_keeps_failing(payload, bit_index):
    store = make_store(OneBitFlipper(bit_index, sticky=True))
    page = PageId(0, 1)
    store.put(page, payload)
    for _ in range(3):  # the medium stays damaged: every re-read fails
        with pytest.raises(FragmentChecksumError):
            store.get(page)
    # Freeing and rewriting the page clears the damage.
    store.free(page)
    store.put(page, payload)
    restored, _, _ = store.get(page)
    assert restored == payload
