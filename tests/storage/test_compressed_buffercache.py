"""The compressed file buffer cache (Section 6 extension)."""

import pytest

from repro.compression import CompressionSampler, create
from repro.mem.frames import FramePool
from repro.sim.costs import CostModel
from repro.sim.ledger import Ledger, TimeCategory
from repro.storage.blockfs import BlockFileSystem
from repro.storage.buffercache import BufferCache
from repro.storage.compressed_buffercache import CompressedBufferCache
from repro.storage.disk import DiskModel
from repro.workloads.contentgen import dp_band_values, incompressible


def make_cache(nframes=8, fill=None, **kwargs):
    fs = BlockFileSystem(DiskModel.rz57())
    handle = fs.open("data")
    generator = fill if fill is not None else dp_band_values
    for block in range(64):
        fs.write(handle, block * 4096, generator(block))
    frames = FramePool(nframes)
    ledger = Ledger()
    cache = CompressedBufferCache(
        fs,
        frames,
        CompressionSampler(create("lzrw1"), keep_payloads=True),
        ledger,
        CostModel(),
        **kwargs,
    )
    return cache, fs, handle, frames, ledger


class TestTiering:
    def test_miss_then_front_hit(self):
        cache, fs, handle, _, _ = make_cache()
        cache.access(handle, 0, now=0.0)
        cache.access(handle, 0, now=1.0)
        assert cache.counters.misses == 1
        assert cache.counters.front_hits == 1

    def test_demotion_to_compressed_tier(self):
        cache, fs, handle, _, _ = make_cache(nframes=4)
        for block in range(6):
            cache.access(handle, block, now=float(block))
        assert cache.compressed_blocks > 0
        assert cache.counters.compressions > 0

    def test_compressed_hit_avoids_io(self):
        cache, fs, handle, _, ledger = make_cache(nframes=4)
        for block in range(6):
            cache.access(handle, block, now=float(block))
        # Block 0 was demoted; touching it again must not hit the disk.
        reads_before = fs.device.counters.reads
        decompress_before = ledger.total(TimeCategory.DECOMPRESS)
        cache.access(handle, 0, now=10.0)
        if cache.counters.compressed_hits:
            assert fs.device.counters.reads == reads_before
            assert ledger.total(TimeCategory.DECOMPRESS) > decompress_before

    def test_incompressible_blocks_rejected(self):
        cache, fs, handle, _, _ = make_cache(nframes=4, fill=incompressible)
        for block in range(10):
            cache.access(handle, block, now=float(block))
        assert cache.compressed_blocks == 0
        assert cache.counters.rejected_blocks > 0

    def test_dirty_blocks_written_back_eventually(self):
        cache, fs, handle, _, _ = make_cache(nframes=3,
                                             fill=incompressible)
        for block in range(8):
            cache.access(handle, block, now=float(block), write=True)
        # Incompressible dirty blocks miss the threshold and write back.
        assert cache.counters.writebacks > 0

    def test_flush_writes_both_tiers(self):
        cache, fs, handle, _, _ = make_cache(nframes=4)
        for block in range(6):
            cache.access(handle, block, now=float(block), write=True)
        cache.flush()
        # Everything dirty reached the device.
        assert cache.counters.writebacks >= 1


class TestCapacityEffect:
    def test_higher_hit_rate_than_plain_cache(self):
        """The extension's entire point: more blocks cached per frame."""
        import random

        def workload(access):
            rng = random.Random(42)
            for step in range(800):
                # Zipf-ish reuse over 24 blocks with 8 frames.
                block = (rng.randrange(8) if rng.random() < 0.35
                         else rng.randrange(24))
                access(block, float(step))

        compressed, fs1, handle1, _, _ = make_cache(nframes=8)
        workload(lambda b, t: compressed.access(handle1, b, t))

        fs2 = BlockFileSystem(DiskModel.rz57())
        handle2 = fs2.open("data")
        for block in range(64):
            fs2.write(handle2, block * 4096, dp_band_values(block))
        plain = BufferCache(fs2, FramePool(8))
        hits = misses = 0
        def plain_access(block, t):
            nonlocal hits, misses
            plain.access(handle2, block, t)
        workload(plain_access)

        assert compressed.counters.hit_rate > plain.counters.hit_rate

    def test_frame_accounting_reconciles(self):
        cache, _, handle, frames, _ = make_cache(nframes=6)
        for block in range(12):
            cache.access(handle, block, now=float(block))
        from repro.mem.frames import FrameOwner

        assert (
            frames.owned_by(FrameOwner.FILE_CACHE)
            == cache.total_frames_held
        )
        assert cache.total_frames_held <= 6

    def test_compressed_fraction_bounded(self):
        cache, _, handle, _, _ = make_cache(
            nframes=8, max_compressed_fraction=0.25
        )
        for block in range(40):
            cache.access(handle, block, now=float(block))
        assert cache._compressed_frames_held <= max(
            1, int(cache.total_frames_held * 0.25)
        ) + 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_cache(max_compressed_fraction=1.5)


class TestShrink:
    def test_shrink_gives_back_a_frame(self):
        cache, _, handle, frames, _ = make_cache(nframes=6)
        for block in range(6):
            cache.access(handle, block, now=float(block))
        free_before = frames.free_frames
        assert cache.shrink_one() is not None
        assert frames.free_frames > free_before

    def test_shrink_empty_returns_none(self):
        cache, _, _, _, _ = make_cache()
        assert cache.shrink_one() is None

    def test_coldest_age(self):
        cache, _, handle, _, _ = make_cache()
        assert cache.coldest_age(0.0) is None
        cache.access(handle, 0, now=5.0)
        assert cache.coldest_age(10.0) == pytest.approx(5.0)
