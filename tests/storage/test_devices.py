"""Disk and network device timing models."""

import pytest

from repro.storage.disk import DiskModel
from repro.storage.network import NetworkModel


class TestDiskModel:
    def test_random_op_includes_seek_and_rotation(self):
        disk = DiskModel.rz57()
        random_read = disk.read(4096, sequential=False)
        assert random_read > disk.avg_seek_s
        assert random_read == pytest.approx(
            disk.fixed_overhead_s
            + disk.avg_seek_s
            + disk.avg_rotation_s
            + 4096 / disk.bandwidth
        )

    def test_rz57_random_page_costs_tens_of_ms(self):
        disk = DiskModel.rz57()
        seconds = disk.read(4096, sequential=False)
        assert 0.015 < seconds < 0.035

    def test_small_sequential_pays_rotation_miss(self):
        disk = DiskModel.rz57()
        seconds = disk.read(4096, sequential=True)
        assert seconds > disk.full_rotation_s
        assert seconds < disk.read(4096, sequential=False)

    def test_large_sequential_streams(self):
        disk = DiskModel.rz57()
        seconds = disk.write(64 * 1024, sequential=True)
        assert seconds == pytest.approx(
            disk.fixed_overhead_s + 65536 / disk.bandwidth
        )

    def test_batched_write_beats_per_page_writes(self):
        """The paper's 32-KByte batches: one op vs eight random ops."""
        batched_disk = DiskModel.rz57()
        batched = batched_disk.write(32768, sequential=False)
        individual_disk = DiskModel.rz57()
        individual = sum(
            individual_disk.write(4096, sequential=False) for _ in range(8)
        )
        assert batched < individual / 3

    def test_counters(self):
        disk = DiskModel.rz57()
        disk.read(4096)
        disk.write(8192, sequential=True)
        counters = disk.counters
        assert counters.reads == 1
        assert counters.writes == 1
        assert counters.bytes_read == 4096
        assert counters.bytes_written == 8192
        assert counters.seeks == 1
        assert counters.busy_seconds > 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DiskModel.rz57().read(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DiskModel(rpm=0)

    def test_presets_ordering(self):
        """Mobile disk slower than RZ57, modern disk much faster."""
        size = 4096
        rz57 = DiskModel.rz57().read(size)
        pcmcia = DiskModel.slow_pcmcia().read(size)
        modern = DiskModel.modern_hdd().read(size)
        assert pcmcia > rz57 > modern


class TestNetworkModel:
    def test_ethernet_page_transfer(self):
        net = NetworkModel.ethernet()
        seconds = net.read(4096)
        # 4 KBytes at 10 Mbps is ~3.3 ms plus RPC and packet costs.
        assert 0.003 < seconds < 0.012

    def test_wavelan_slower_than_ethernet(self):
        assert (
            NetworkModel.wavelan().read(4096)
            > NetworkModel.ethernet().read(4096)
        )

    def test_sequential_amortizes_rpc(self):
        net = NetworkModel.ethernet()
        assert net.read(4096, sequential=True) < net.read(4096)

    def test_packet_count_matters(self):
        net = NetworkModel(per_packet_ms=1.0, packet_bytes=1000)
        one = net.read(900, sequential=True)
        three = net.read(2900, sequential=True)
        assert three > one + 2 * 0.001

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bits_per_s=0)
