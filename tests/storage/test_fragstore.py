"""Fragment store: padding, batching, spanning, GC."""

import pytest

from repro.mem.page import PageId
from repro.storage.blockfs import BlockFileSystem
from repro.storage.disk import DiskModel
from repro.storage.fragstore import FragmentStore


def make_store(**kwargs):
    fs = BlockFileSystem(DiskModel.rz57())
    return FragmentStore(fs, **kwargs)


class TestRoundTrip:
    def test_put_get(self):
        store = make_store()
        payload = b"C" * 1500
        store.put(PageId(0, 1), payload)
        restored, _, _ = store.get(PageId(0, 1))
        assert restored == payload

    def test_get_after_flush(self):
        store = make_store()
        payload = b"D" * 900
        store.put(PageId(0, 1), payload)
        store.flush()
        restored, seconds, _ = store.get(PageId(0, 1))
        assert restored == payload
        assert seconds > 0  # had to hit the device

    def test_unflushed_get_is_free(self):
        store = make_store()
        store.put(PageId(0, 1), b"E" * 100)
        _, seconds, _ = store.get(PageId(0, 1))
        assert seconds == 0.0

    def test_many_pages(self):
        store = make_store()
        payloads = {
            PageId(0, n): bytes([n]) * (500 + 37 * n) for n in range(40)
        }
        for page_id, payload in payloads.items():
            store.put(page_id, payload)
        store.flush()
        for page_id, payload in payloads.items():
            assert store.get(page_id)[0] == payload

    def test_peek_matches_get(self):
        store = make_store()
        store.put(PageId(0, 2), b"F" * 700)
        store.flush()
        assert store.peek(PageId(0, 2)) == store.get(PageId(0, 2))[0]

    def test_peek_matches_get_in_staging_batch(self):
        # The prefetch path may serve a page that has not been flushed
        # yet; peek's memoryview slicing of the staging buffer must hand
        # back exactly the bytes get() would, as a real ``bytes`` object.
        store = make_store()
        payloads = {
            PageId(0, n): bytes([0x40 + n]) * (300 + 111 * n)
            for n in range(4)
        }
        for page_id, payload in payloads.items():
            store.put(page_id, payload)
        for page_id, payload in payloads.items():
            peeked = store.peek(page_id)
            assert type(peeked) is bytes
            assert peeked == payload
            got, seconds, _ = store.get(page_id)
            assert type(got) is bytes
            assert got == peeked
            assert seconds == 0.0  # staged data costs no I/O

    def test_missing_page_raises(self):
        store = make_store()
        with pytest.raises(KeyError):
            store.get(PageId(0, 99))
        with pytest.raises(KeyError):
            store.peek(PageId(0, 99))

    def test_empty_payload_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.put(PageId(0, 0), b"")


class TestFragmentsAndPadding:
    def test_padded_to_fragment_size(self):
        """Section 4.3: pads each compressed page to 1 KByte fragments."""
        store = make_store()
        store.put(PageId(0, 1), b"x" * 100)
        location = store.location(PageId(0, 1))
        assert location.padded_bytes == 1024
        assert store.counters.padding_bytes == 924

    def test_exact_fragment_no_padding(self):
        store = make_store()
        store.put(PageId(0, 1), b"x" * 2048)
        assert store.location(PageId(0, 1)).padded_bytes == 2048

    def test_fragment_size_must_divide_block(self):
        fs = BlockFileSystem(DiskModel.rz57())
        with pytest.raises(ValueError):
            FragmentStore(fs, fragment_size=1000)


class TestBatching:
    def test_flush_at_batch_boundary(self):
        """32 KBytes of compressed pages are written at once."""
        store = make_store()
        for n in range(31):
            seconds = store.put(PageId(0, n), b"y" * 1024)
            assert seconds == 0.0
        seconds = store.put(PageId(0, 31), b"y" * 1024)  # 32 KBytes now
        assert seconds > 0.0
        assert store.counters.batch_flushes == 1

    def test_batched_write_is_single_operation(self):
        store = make_store()
        for n in range(32):
            store.put(PageId(0, n), b"y" * 1024)
        assert store.fs.device.counters.writes == 1


class TestSpanning:
    def test_spanning_page_costs_two_blocks(self):
        """A page crossing a block boundary turns a 4-KByte read into 8."""
        store = make_store()
        store.put(PageId(0, 0), b"a" * 3000)   # frags 0-2
        store.put(PageId(0, 1), b"b" * 3000)   # frags 3-5, spans blocks
        store.flush()
        before = store.fs.device.counters.bytes_read
        store.get(PageId(0, 1))
        assert store.fs.device.counters.bytes_read - before == 8192

    def test_no_spanning_inserts_gaps(self):
        store = make_store(allow_spanning=False)
        store.put(PageId(0, 0), b"a" * 3000)
        store.put(PageId(0, 1), b"b" * 3000)  # would span; skips to next block
        location = store.location(PageId(0, 1))
        assert location.offset == 4096
        assert store.counters.spanning_skips == 1

    def test_no_spanning_single_block_reads(self):
        store = make_store(allow_spanning=False)
        store.put(PageId(0, 0), b"a" * 3000)
        store.put(PageId(0, 1), b"b" * 3000)
        store.flush()
        before = store.fs.device.counters.bytes_read
        store.get(PageId(0, 1))
        assert store.fs.device.counters.bytes_read - before == 4096


class TestColocation:
    def test_colocated_pages_reported(self):
        store = make_store()
        store.put(PageId(0, 0), b"a" * 1024)
        store.put(PageId(0, 1), b"b" * 1024)
        store.put(PageId(0, 2), b"c" * 1024)
        store.put(PageId(0, 3), b"d" * 1024)
        store.flush()
        _, _, colocated = store.get(PageId(0, 0))
        assert set(colocated) == {PageId(0, 1), PageId(0, 2), PageId(0, 3)}

    def test_far_pages_not_colocated(self):
        store = make_store()
        store.put(PageId(0, 0), b"a" * 4096)
        store.put(PageId(0, 1), b"b" * 4096)
        store.flush()
        _, _, colocated = store.get(PageId(0, 0))
        assert colocated == []


class TestGarbageCollection:
    def test_rewrite_creates_garbage(self):
        store = make_store()
        store.put(PageId(0, 0), b"v1" * 512)
        store.put(PageId(0, 0), b"v2" * 512)
        assert store.garbage_fraction > 0.0

    def test_free_counts_garbage(self):
        store = make_store()
        store.put(PageId(0, 0), b"a" * 1024)
        store.free(PageId(0, 0))
        assert not store.contains(PageId(0, 0))
        assert store.counters.garbage_bytes_created == 1024

    def test_collect_compacts(self):
        store = make_store(gc_min_bytes=0)
        for n in range(16):
            store.put(PageId(0, n), bytes([n]) * 1024)
        for n in range(0, 16, 2):
            store.free(PageId(0, n))
        store.maybe_collect(force=True)
        assert store.garbage_fraction == 0.0
        assert store.file_bytes == 8 * 1024
        for n in range(1, 16, 2):
            assert store.get(PageId(0, n))[0] == bytes([n]) * 1024

    def test_collect_threshold(self):
        store = make_store(gc_min_bytes=0, gc_threshold=0.5)
        store.put(PageId(0, 0), b"a" * 1024)
        store.put(PageId(0, 1), b"b" * 1024)
        assert store.maybe_collect() == 0.0  # no garbage yet
        store.free(PageId(0, 0))
        store.free(PageId(0, 1))
        store.put(PageId(0, 2), b"c" * 1024)
        assert store.garbage_fraction > 0.5
        seconds = store.maybe_collect()
        assert store.counters.gc_runs == 1
        assert store.get(PageId(0, 2))[0] == b"c" * 1024

    def test_collect_empty_store(self):
        store = make_store(gc_min_bytes=0)
        store.put(PageId(0, 0), b"a" * 1024)
        store.free(PageId(0, 0))
        store.maybe_collect(force=True)
        assert store.file_bytes == 0

    def test_invalid_thresholds(self):
        fs = BlockFileSystem(DiskModel.rz57())
        with pytest.raises(ValueError):
            FragmentStore(fs, gc_threshold=0.0)
        with pytest.raises(ValueError):
            FragmentStore(fs, batch_bytes=100)


class TestMissingFragmentError:
    """Unknown/reclaimed pages raise a typed, annotated KeyError subclass."""

    def test_get_raises_missing_fragment_error(self):
        from repro.faults.errors import MissingFragmentError

        store = make_store()
        with pytest.raises(MissingFragmentError) as excinfo:
            store.get(PageId(0, 99))
        assert excinfo.value.page_id == PageId(0, 99)
        assert excinfo.value.gc_generation == 0
        assert "generation" in str(excinfo.value)

    def test_peek_raises_missing_fragment_error(self):
        from repro.faults.errors import MissingFragmentError

        store = make_store()
        with pytest.raises(MissingFragmentError):
            store.peek(PageId(0, 99))

    def test_carries_gc_generation(self):
        from repro.faults.errors import MissingFragmentError

        store = make_store(gc_min_bytes=0)
        store.put(PageId(0, 0), b"a" * 1024)
        store.free(PageId(0, 0))
        store.maybe_collect(force=True)
        with pytest.raises(MissingFragmentError) as excinfo:
            store.get(PageId(0, 0))
        assert excinfo.value.gc_generation == 1

    def test_is_a_key_error(self):
        """Legacy ``except KeyError`` callers keep working."""
        from repro.faults.errors import MissingFragmentError

        assert issubclass(MissingFragmentError, KeyError)
