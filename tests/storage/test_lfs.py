"""Log-structured file system: log semantics, cleaning, costs."""

import pytest

from repro.storage.disk import DiskModel
from repro.storage.lfs import LogStructuredFS


def make_lfs(**kwargs):
    kwargs.setdefault("segment_blocks", 8)
    kwargs.setdefault("total_segments", 16)
    return LogStructuredFS(DiskModel.rz57(), **kwargs)


class TestDataFidelity:
    def test_write_read_round_trip(self):
        lfs = make_lfs()
        f = lfs.open("data")
        payload = bytes(range(256)) * 16
        lfs.write(f, 0, payload)
        data, _ = lfs.read(f, 0, 4096)
        assert data == payload

    def test_overwrite_returns_newest(self):
        lfs = make_lfs()
        f = lfs.open("data")
        lfs.write(f, 0, b"1" * 4096)
        lfs.write(f, 0, b"2" * 4096)
        lfs.flush()
        data, _ = lfs.read(f, 0, 4096)
        assert data == b"2" * 4096

    def test_partial_write_merges(self):
        lfs = make_lfs()
        f = lfs.open("data")
        lfs.write(f, 0, b"A" * 4096)
        lfs.write(f, 1000, b"B" * 100)
        data, _ = lfs.read(f, 0, 4096)
        assert data[999:1101] == b"A" + b"B" * 100 + b"A"

    def test_holes_read_as_zeros(self):
        lfs = make_lfs()
        f = lfs.open("data")
        lfs.write(f, 8192, b"X" * 4096)
        data, _ = lfs.read(f, 0, 4096)
        assert data == bytes(4096)

    def test_peek_matches_read(self):
        lfs = make_lfs()
        f = lfs.open("data")
        lfs.write(f, 0, b"P" * 6000)
        assert lfs.peek(f, 100, 500) == lfs.read(f, 100, 500)[0]

    def test_truncate(self):
        lfs = make_lfs()
        f = lfs.open("data")
        lfs.write(f, 0, b"T" * 8192)
        lfs.truncate(f, 4096)
        data, _ = lfs.read(f, 4096, 4096)
        assert data == bytes(4096)

    def test_survives_many_random_updates(self, rng):
        """Random writes against a reference model."""
        lfs = make_lfs(segment_blocks=4, total_segments=64)
        f = lfs.open("data")
        model = bytearray(16 * 4096)
        for _ in range(200):
            offset = rng.randrange(0, len(model) - 512)
            size = rng.randrange(1, 512)
            payload = bytes(rng.randrange(256) for _ in range(size))
            lfs.write(f, offset, payload)
            model[offset : offset + size] = payload
        lfs.flush()
        data, _ = lfs.read(f, 0, len(model))
        assert data == bytes(model)


class TestLogBehaviour:
    def test_writes_buffer_until_segment_fills(self):
        lfs = make_lfs(segment_blocks=8)
        f = lfs.open("swap")
        for block in range(7):
            lfs.write(f, block * 4096, b"W" * 4096)
        assert lfs.counters.segments_written == 0
        lfs.write(f, 7 * 4096, b"W" * 4096)
        assert lfs.counters.segments_written == 1

    def test_segment_write_is_single_operation(self):
        lfs = make_lfs(segment_blocks=8)
        f = lfs.open("swap")
        for block in range(8):
            lfs.write(f, block * 4096, b"W" * 4096)
        assert lfs.device.counters.writes == 1

    def test_small_writes_cheaper_than_update_in_place(self):
        """LFS: "much higher bandwidth by coalescing many small writes
        into a single larger transfer"."""
        from repro.storage.blockfs import BlockFileSystem

        def cost(fs):
            f = fs.open("swap")
            return sum(
                fs.write(f, block * 4096, b"W" * 4096)
                for block in range(32)
            ) + (fs.flush() if hasattr(fs, "flush") else 0.0)

        lfs_cost = cost(make_lfs(segment_blocks=8, total_segments=32))
        ufs_cost = cost(BlockFileSystem(DiskModel.rz57()))
        assert lfs_cost < ufs_cost / 2

    def test_buffered_blocks_read_free(self):
        lfs = make_lfs(segment_blocks=8)
        f = lfs.open("swap")
        lfs.write(f, 0, b"R" * 4096)
        data, seconds = lfs.read(f, 0, 4096)
        assert seconds == 0.0  # still in the segment buffer

    def test_flushed_blocks_cost_a_read(self):
        lfs = make_lfs(segment_blocks=2)
        f = lfs.open("swap")
        lfs.write(f, 0, b"R" * 4096)
        lfs.write(f, 4096, b"R" * 4096)
        # Drop the simulated in-memory copies to model a cold cache.
        f.blocks.clear()
        _, seconds = lfs.read(f, 0, 4096)
        assert seconds > 0.0


class TestCleaner:
    def test_cleaning_reclaims_partially_dead_segments(self):
        lfs = make_lfs(segment_blocks=4, total_segments=6, clean_reserve=2)
        f = lfs.open("swap")
        # Long-lived blocks interleaved with churn leave every segment
        # partially live: only the cleaner can reclaim the dead space.
        for block in range(16):
            lfs.write(f, block * 4096, bytes([255 - block]) * 4096)
        for round_number in range(10):
            for block in range(0, 16, 2):  # rewrite the even blocks
                lfs.write(f, block * 4096, bytes([round_number]) * 4096)
        assert lfs.counters.segments_cleaned > 0
        assert lfs.free_segments >= 1
        # Untouched odd blocks survived the cleaner's copies.
        data, _ = lfs.read(f, 3 * 4096, 4096)
        assert data == bytes([255 - 3]) * 4096
        data, _ = lfs.read(f, 2 * 4096, 4096)
        assert data == bytes([9]) * 4096

    def test_cleaner_copies_live_blocks(self):
        lfs = make_lfs(segment_blocks=4, total_segments=6, clean_reserve=2)
        f = lfs.open("swap")
        # Fill with long-lived data plus churn; live blocks must survive
        # cleaning.
        lfs.write(f, 0, b"L" * 4096 * 4)
        for round_number in range(12):
            lfs.write(f, 4 * 4096, bytes([round_number]) * 4096 * 4)
        assert lfs.counters.live_blocks_copied >= 0
        data, _ = lfs.read(f, 0, 4096 * 4)
        assert data == b"L" * 4096 * 4

    def test_utilization_tracking(self):
        lfs = make_lfs(segment_blocks=4)
        f = lfs.open("swap")
        for block in range(4):
            lfs.write(f, block * 4096, b"U" * 4096)
        assert lfs.utilization() == pytest.approx(1.0)
        lfs.write(f, 0, b"V" * 4096)  # kills one on-disk block
        assert lfs.utilization() == pytest.approx(0.75)

    def test_full_disk_raises(self):
        lfs = make_lfs(segment_blocks=2, total_segments=4, clean_reserve=1)
        f = lfs.open("swap")
        with pytest.raises(RuntimeError):
            for block in range(64):
                lfs.write(f, block * 4096, b"F" * 4096)


class TestGeometryValidation:
    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LogStructuredFS(DiskModel.rz57(), segment_blocks=0)
        with pytest.raises(ValueError):
            LogStructuredFS(DiskModel.rz57(), total_segments=1)
        with pytest.raises(ValueError):
            LogStructuredFS(DiskModel.rz57(), clean_reserve=0)


class TestAsBackingStore:
    def test_standard_swap_on_lfs(self):
        from repro.mem.page import PageId
        from repro.storage.swap import StandardSwap

        swap = StandardSwap(make_lfs(segment_blocks=4, total_segments=64))
        for n in range(8):
            swap.write_page(PageId(0, n), bytes([n]) * 4096)
        swap.fs.flush()
        for n in range(8):
            assert swap.read_page(PageId(0, n))[0] == bytes([n]) * 4096

    def test_fragment_store_on_lfs(self):
        from repro.mem.page import PageId
        from repro.storage.fragstore import FragmentStore

        store = FragmentStore(make_lfs(segment_blocks=4, total_segments=64))
        for n in range(12):
            store.put(PageId(0, n), bytes([n + 1]) * (700 + n * 31))
        store.flush()
        for n in range(12):
            assert store.get(PageId(0, n))[0] == bytes([n + 1]) * (700 + n * 31)
