"""Unit tests for the log-structured compressed-page backing store.

Crash/recovery properties live in ``test_logstore_crash.py``; this file
covers the ordinary store contract (the same duck-typed surface the
fragment store exposes), the segment/cleaning mechanics, and the
configuration plumbing.
"""

import pytest

from repro.mem.page import PageId
from repro.storage.disk import DiskModel
from repro.storage.logstore import (
    KILL_SITES,
    LogStoreConfig,
    LogStructuredStore,
    parse_kill_spec,
)


def make_store(**overrides):
    config = LogStoreConfig(**{
        "segment_bytes": 8192,
        "total_segments": 32,
        **overrides,
    })
    return LogStructuredStore(
        DiskModel.rz57(), config=config, batch_bytes=4096
    )


def fill(store, count, size=600, base=0):
    pages = [PageId(0, base + i) for i in range(count)]
    for i, page in enumerate(pages):
        store.put(page, bytes([(i + 7) % 256]) * size)
    return pages


class TestRoundTrip:
    def test_put_get_roundtrip(self):
        store = make_store()
        payload = b"\x42" * 900
        store.put(PageId(0, 1), payload)
        store.flush()
        data, seconds, _colocated = store.get(PageId(0, 1))
        assert data == payload
        assert seconds > 0.0

    def test_get_before_flush_serves_staged_copy(self):
        store = make_store()
        payload = b"\x17" * 300
        store.put(PageId(0, 2), payload)
        data, _seconds, _ = store.get(PageId(0, 2))
        assert data == payload

    def test_peek_does_not_charge_device(self):
        store = make_store()
        store.put(PageId(0, 3), b"\x05" * 200)
        store.flush()
        before = store.counters.pages_got
        assert store.peek(PageId(0, 3)) == b"\x05" * 200
        assert store.counters.pages_got == before

    def test_contains_and_free(self):
        store = make_store()
        page = PageId(0, 4)
        store.put(page, b"\x09" * 100)
        assert store.contains(page)
        store.free(page)
        assert not store.contains(page)
        with pytest.raises(KeyError):
            store.get(page)

    def test_empty_payload_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.put(PageId(0, 5), b"")

    def test_supersede_keeps_latest(self):
        store = make_store()
        page = PageId(0, 6)
        store.put(page, b"\x01" * 400)
        store.put(page, b"\x02" * 400)
        store.flush()
        data, _, _ = store.get(page)
        assert data == b"\x02" * 400
        assert store.live_pages == 1


class TestBatching:
    def test_appends_batch_until_threshold(self):
        store = make_store()
        store.put(PageId(0, 1), b"\x01" * 100)
        assert store.counters.batch_flushes == 0
        # Crossing batch_bytes (4096) forces a write-out.
        store.put(PageId(0, 2), b"\x02" * 4200)
        assert store.counters.batch_flushes == 1

    def test_sync_appends_flush_every_op(self):
        store = make_store(sync_appends=True)
        for i in range(3):
            store.put(PageId(0, i), b"\x03" * 64)
        assert store.counters.batch_flushes == 3
        assert store.counters.append_writes == 3

    def test_flush_is_idempotent(self):
        store = make_store()
        store.put(PageId(0, 1), b"\x04" * 64)
        assert store.flush() > 0.0
        assert store.flush() == 0.0


class TestCleaning:
    def test_forced_collect_reclaims_garbage(self):
        store = make_store(sync_appends=True, min_sealed_for_gc=1)
        pages = fill(store, 40, size=900)
        for page in pages[:30]:
            store.free(page)
        before = store.free_segments
        seconds = store.maybe_collect(force=True)
        assert seconds > 0.0
        assert store.counters.segments_cleaned > 0
        assert store.free_segments > before
        assert store.gc_generation >= 1
        # Survivors are intact after their segments were copied out.
        for i, page in enumerate(pages[30:], start=30):
            data, _, _ = store.get(page)
            assert data == bytes([(i + 7) % 256]) * 900

    def test_threshold_collect_noop_when_clean(self):
        store = make_store()
        fill(store, 4)
        store.flush()
        assert store.maybe_collect() == 0.0
        assert store.counters.segments_cleaned == 0

    def test_cleaning_writes_checkpoint(self):
        store = make_store(sync_appends=True, min_sealed_for_gc=1)
        pages = fill(store, 40, size=900)
        for page in pages[:35]:
            store.free(page)
        store.maybe_collect(force=True)
        assert store.counters.checkpoints_written >= 1

    def test_periodic_checkpoint_follows_opens(self):
        store = make_store(sync_appends=True, checkpoint_every=2)
        fill(store, 60, size=900)  # ~54 KB: several segment opens
        assert store.counters.checkpoints_written >= 2


class TestRecoveryBasics:
    def test_recover_empty_store(self):
        store = make_store()
        store.crash_and_recover()
        assert store.live_pages == 0
        assert store.recovery.recoveries == 1

    def test_acknowledged_pages_survive_crash(self):
        store = make_store(sync_appends=True)
        pages = fill(store, 25, size=700)
        store.free(pages[3])
        acked = store.acknowledged_pages()
        store.crash_and_recover()
        assert store.acknowledged_pages() == acked
        data, _, _ = store.get(pages[7])
        assert data == bytes([(7 + 7) % 256]) * 700

    def test_unflushed_batch_lost_on_crash(self):
        store = make_store()  # batched mode: the put is only staged
        store.put(PageId(0, 1), b"\x06" * 100)
        store.crash_and_recover()
        assert not store.contains(PageId(0, 1))

    def test_recovery_stats_outside_digest_counters(self):
        store = make_store(sync_appends=True)
        fill(store, 5)
        snap_before = store.counters.snapshot()
        store.crash_and_recover()
        assert store.counters.snapshot() == snap_before
        assert "recoveries" not in snap_before
        assert store.recovery.replayed_records > 0


class TestConfig:
    def test_kill_sites_exported(self):
        assert KILL_SITES == ("append", "clean", "checkpoint")

    @pytest.mark.parametrize("spec,expected", [
        ("append:3", ("append", 3, None)),
        ("clean:1:0.5", ("clean", 1, 0.5)),
        ("checkpoint:10:0.0", ("checkpoint", 10, 0.0)),
    ])
    def test_parse_kill_spec(self, spec, expected):
        assert parse_kill_spec(spec) == expected

    @pytest.mark.parametrize("spec", [
        "append", "append:0", "nowhere:1", "clean:2:1.5", "clean:x",
    ])
    def test_parse_kill_spec_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_kill_spec(spec)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LogStoreConfig(segment_bytes=1024)
        with pytest.raises(ValueError):
            LogStoreConfig(total_segments=2)
        with pytest.raises(ValueError):
            LogStoreConfig(kill="bogus")

    def test_kill_spec_forces_sync_appends(self):
        store = make_store(kill="append:1000")
        assert store.sync_appends
