"""Crash-consistency properties of the log-structured backing store.

Two guarantees, checked at two levels:

* **Acknowledged writes survive.**  Every page the store acknowledged
  as durable before a simulated power loss is still present — same
  payload checksum — after recovery.  Checked inside every simulated
  crash by an instrumented store subclass.

* **Digest-pinned replay.**  A run that crashes at *any* kill point and
  recovers must finish in exactly the state — counters, imap, segment
  table, head position, charged seconds — of the same run uninterrupted.
  Recovery is reboot-time work outside the measured run; the redo
  protocol re-charges exactly the work the crash swallowed, no more.
  Checked over a deterministic kill grid (every site at several depths
  and torn fractions) and by a Hypothesis sweep over random operation
  sequences and kill placements.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.page import PageId
from repro.storage.disk import DiskModel
from repro.storage.logstore import (
    KILL_SITES,
    LogStoreConfig,
    LogStructuredStore,
)


class CheckedStore(LogStructuredStore):
    """Asserts acknowledged-write survival inside every crash."""

    def _crash_and_recover(self):
        acked_before = self.acknowledged_pages()
        super()._crash_and_recover()
        acked_after = self.acknowledged_pages()
        lost = {
            page: crc for page, crc in acked_before.items()
            if acked_after.get(page) != crc
        }
        assert not lost, (
            f"{len(lost)} acknowledged write(s) lost in recovery: "
            f"{sorted(lost)[:5]}"
        )


def build(kill=None, store_cls=CheckedStore):
    config = LogStoreConfig(
        segment_bytes=8192,
        total_segments=48,
        sync_appends=True,
        kill=kill,
    )
    return store_cls(DiskModel.rz57(), config=config, batch_bytes=4096)


def drive(store, seed=7, pages=80, ops=320):
    """A deterministic mixed workload; returns total charged seconds."""
    rng = random.Random(seed)
    ids = [PageId(0, i) for i in range(pages)]
    present = set()
    total = 0.0
    for i in range(ops):
        r = rng.random()
        page = rng.choice(ids)
        if r < 0.6:
            size = rng.randrange(80, 1200)
            payload = bytes(rng.getrandbits(8) for _ in range(32)) * (
                (size + 31) // 32
            )
            total += store.put(page, payload[:size])
            present.add(page)
        elif r < 0.8:
            store.free(page)
            present.discard(page)
        elif page in present:
            _payload, seconds, _ = store.get(page)
            total += seconds
        if i % 97 == 96:
            total += store.maybe_collect(force=(i % 194 == 193))
    total += store.flush()
    total += store.maybe_collect(force=True)
    return total


def state(store):
    """Everything the digest sees, plus the internal layout."""
    return (
        store.counters.snapshot(),
        store.gc_generation,
        sorted(
            (p.segment, p.number, loc.segment, loc.offset, loc.nbytes,
             loc.crc32, loc.seq)
            for p, loc in store._imap.items()
        ),
        sorted(store._allocated.items()),
        (store._head_seg, store._head_off),
        sorted(store._free),
    )


@pytest.fixture(scope="module")
def reference():
    store = build()
    total = drive(store)
    return state(store), total


KILL_GRID = [
    f"{site}:{count}:{frac}"
    for site in KILL_SITES
    for count in (1, 2, 5)
    for frac in (0.0, 0.5, 0.9)
]


@pytest.mark.parametrize("kill", KILL_GRID)
def test_kill_grid_recovers_to_reference_state(kill, reference):
    ref_state, ref_total = reference
    store = build(kill=kill)
    total = drive(store)
    assert state(store) == ref_state, f"state diverged after {kill}"
    assert total == pytest.approx(ref_total, abs=1e-9), (
        f"charged seconds diverged after {kill}"
    )


def test_kill_grid_actually_fires(reference):
    # Sanity for the grid above: the single-shot kills at depth 1 all
    # trigger (a grid of never-firing kills would test nothing).
    for site in KILL_SITES:
        store = build(kill=f"{site}:1:0.5")
        drive(store)
        assert store._kill is None, f"kill at {site}:1 never fired"
        assert store.recovery.recoveries == 1


def test_deep_kills_may_never_fire_and_stay_harmless(reference):
    ref_state, ref_total = reference
    store = build(kill="checkpoint:10000")
    total = drive(store)
    assert store._kill is not None  # never fired
    assert state(store) == ref_state
    assert total == pytest.approx(ref_total, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    site=st.sampled_from(KILL_SITES),
    count=st.integers(1, 12),
    frac=st.floats(0.0, 1.0),
)
def test_random_workloads_recover_exactly(seed, site, count, frac):
    ref = build()
    ref_total = drive(ref, seed=seed, pages=60, ops=180)
    killed = build(kill=f"{site}:{count}:{frac}")
    total = drive(killed, seed=seed, pages=60, ops=180)
    assert state(killed) == state(ref)
    assert total == pytest.approx(ref_total, abs=1e-9)


def test_chaos_injector_crashes_recover_exactly():
    """Random multi-crash schedules (injector-driven) are also exact."""
    from repro.faults.degrade import ResilienceCounters
    from repro.faults.injectors import FaultInjector
    from repro.faults.plan import FaultPlan, LfsFaultConfig

    ref = build()
    ref_total = drive(ref)
    for seed in (1, 3):
        plan = FaultPlan(seed=seed, lfs=LfsFaultConfig(crash_rate=0.05))
        resilience = ResilienceCounters()
        injector = FaultInjector(plan, resilience)
        config = LogStoreConfig(
            segment_bytes=8192, total_segments=48, sync_appends=True
        )
        store = CheckedStore(
            DiskModel.rz57(), config=config, batch_bytes=4096,
            injector=injector,
        )
        total = drive(store)
        assert resilience.lfs_crashes > 3  # the schedule really crashed
        assert state(store) == state(ref)
        assert total == pytest.approx(ref_total, abs=1e-9)


def test_lost_checkpoint_slot_recovers_from_older_slot():
    from repro.faults.degrade import ResilienceCounters
    from repro.faults.injectors import FaultInjector
    from repro.faults.plan import FaultPlan, LfsFaultConfig

    ref = build()
    ref_total = drive(ref)
    plan = FaultPlan(
        seed=5,
        lfs=LfsFaultConfig(crash_rate=0.02, checkpoint_lost_rate=0.5),
    )
    resilience = ResilienceCounters()
    injector = FaultInjector(plan, resilience)
    config = LogStoreConfig(
        segment_bytes=8192, total_segments=48, sync_appends=True
    )
    store = CheckedStore(
        DiskModel.rz57(), config=config, batch_bytes=4096,
        injector=injector,
    )
    total = drive(store)
    assert total > 0.0
    assert resilience.lfs_checkpoints_lost > 0
    assert store.recovery.recoveries > 0
    # Checkpoint loss is a *real* durability fault, not a kill point:
    # each vanished slot legitimately forces the periodic checkpoint
    # earlier, so the cadence-dependent pieces (checkpoints_written and
    # the seconds they charge) may exceed the fault-free reference.
    # Everything data-bearing must still converge: the log traffic, the
    # cleaning schedule, and the recovered page map are bit-equal.
    ref_state, faulted_state = state(ref), state(store)
    ref_counters = dict(ref_state[0])
    faulted_counters = dict(faulted_state[0])
    assert faulted_counters.pop("checkpoints_written") >= (
        ref_counters.pop("checkpoints_written")
    )
    assert faulted_counters == ref_counters
    # gc_generation rides the same cadence (crash redos and early
    # checkpoints both move it); it is a volatile invalidation token,
    # not digest state, so its absolute value is not compared.
    assert faulted_state[2:] == ref_state[2:]
