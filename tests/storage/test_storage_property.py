"""Model-based property tests for the storage substrate.

Each file-system implementation is driven with random operation
sequences against a plain ``bytearray`` reference model; contents must
match byte-for-byte at every step.  The fragment store is likewise
checked against a dict model through random put/get/free/gc sequences.
"""

from hypothesis import given, settings, strategies as st

from repro.mem.page import PageId
from repro.storage.blockfs import BlockFileSystem, PartialWritePolicy
from repro.storage.disk import DiskModel
from repro.storage.fragstore import FragmentStore
from repro.storage.lfs import LogStructuredFS

FILE_BYTES = 8 * 4096


def _ops():
    return st.lists(
        st.one_of(
            st.tuples(
                st.just("write"),
                st.integers(0, FILE_BYTES - 1),
                st.integers(1, 6000),
                st.integers(0, 255),
            ),
            st.tuples(
                st.just("read"),
                st.integers(0, FILE_BYTES - 1),
                st.integers(0, 6000),
            ),
        ),
        min_size=1,
        max_size=25,
    )


def _drive(fs, ops):
    handle = fs.open("model")
    model = bytearray(FILE_BYTES)
    written_high_water = 0
    for op in ops:
        if op[0] == "write":
            _, offset, size, fill = op
            size = min(size, FILE_BYTES - offset)
            payload = bytes([fill]) * size
            fs.write(handle, offset, payload)
            model[offset : offset + size] = payload
            written_high_water = max(written_high_water, offset + size)
        else:
            _, offset, size = op
            size = min(size, FILE_BYTES - offset)
            data, _ = fs.read(handle, offset, size)
            assert data == bytes(model[offset : offset + size])
    if hasattr(fs, "flush"):
        fs.flush()
    data, _ = fs.read(handle, 0, written_high_water)
    assert data == bytes(model[:written_high_water])


@settings(max_examples=60, deadline=None)
@given(ops=_ops())
def test_blockfs_rmw_matches_model(ops):
    _drive(BlockFileSystem(DiskModel.rz57()), ops)


@settings(max_examples=40, deadline=None)
@given(ops=_ops())
def test_blockfs_overwrite_policy_matches_model(ops):
    fs = BlockFileSystem(
        DiskModel.rz57(),
        partial_write_policy=PartialWritePolicy.OVERWRITE,
    )
    _drive(fs, ops)


@settings(max_examples=60, deadline=None)
@given(ops=_ops())
def test_lfs_matches_model(ops):
    fs = LogStructuredFS(
        DiskModel.rz57(), segment_blocks=4, total_segments=128
    )
    _drive(fs, ops)


def _frag_ops():
    return st.lists(
        st.one_of(
            st.tuples(
                st.just("put"),
                st.integers(0, 12),
                st.integers(1, 4096),
                st.integers(0, 255),
            ),
            st.tuples(st.just("get"), st.integers(0, 12)),
            st.tuples(st.just("free"), st.integers(0, 12)),
            st.tuples(st.just("flush"), st.just(0)),
            st.tuples(st.just("gc"), st.just(0)),
        ),
        min_size=1,
        max_size=40,
    )


@settings(max_examples=60, deadline=None)
@given(ops=_frag_ops(), spanning=st.booleans())
def test_fragstore_matches_model(ops, spanning):
    fs = BlockFileSystem(DiskModel.rz57())
    store = FragmentStore(fs, allow_spanning=spanning, gc_min_bytes=0)
    model = {}
    for op in ops:
        kind = op[0]
        if kind == "put":
            _, number, size, fill = op
            payload = bytes([fill]) * size
            store.put(PageId(0, number), payload)
            model[number] = payload
        elif kind == "get":
            number = op[1]
            if number in model:
                payload, _, _ = store.get(PageId(0, number))
                assert payload == model[number]
            else:
                assert not store.contains(PageId(0, number))
        elif kind == "free":
            number = op[1]
            store.free(PageId(0, number))
            model.pop(number, None)
        elif kind == "flush":
            store.flush()
        elif kind == "gc":
            store.maybe_collect(force=True)
    # Final sweep: every live page reads back exactly.
    for number, payload in model.items():
        assert store.get(PageId(0, number))[0] == payload
        assert store.peek(PageId(0, number)) == payload
    # Space accounting sanity.
    assert store.live_bytes <= store.file_bytes or store.file_bytes == 0
