"""Standard swap: fixed page-to-block mapping."""

import pytest

from repro.mem.page import PageId
from repro.storage.blockfs import BlockFileSystem
from repro.storage.disk import DiskModel
from repro.storage.swap import StandardSwap

from ..conftest import PAGE


@pytest.fixture
def swap():
    return StandardSwap(BlockFileSystem(DiskModel.rz57()))


class TestRoundTrip:
    def test_write_then_read(self, swap):
        page_id = PageId(0, 3)
        data = b"S" * PAGE
        swap.write_page(page_id, data)
        restored, _ = swap.read_page(page_id)
        assert restored == data

    def test_pages_at_fixed_offsets(self, swap):
        """The one-to-one page-to-block mapping: page n at offset n*4K."""
        swap.write_page(PageId(0, 2), b"X" * PAGE)
        handle = swap._file(0)
        assert handle.blocks[2] == bytearray(b"X" * PAGE)

    def test_separate_files_per_segment(self, swap):
        swap.write_page(PageId(0, 0), b"A" * PAGE)
        swap.write_page(PageId(7, 0), b"B" * PAGE)
        assert swap._file(0) is not swap._file(7)
        assert swap.read_page(PageId(0, 0))[0][:1] == b"A"
        assert swap.read_page(PageId(7, 0))[0][:1] == b"B"

    def test_overwrite_page(self, swap):
        page_id = PageId(0, 0)
        swap.write_page(page_id, b"1" * PAGE)
        swap.write_page(page_id, b"2" * PAGE)
        assert swap.read_page(page_id)[0] == b"2" * PAGE


class TestStateTracking:
    def test_contains(self, swap):
        page_id = PageId(0, 5)
        assert not swap.contains(page_id)
        swap.write_page(page_id, bytes(PAGE))
        assert swap.contains(page_id)

    def test_invalidate(self, swap):
        page_id = PageId(0, 5)
        swap.write_page(page_id, bytes(PAGE))
        swap.invalidate(page_id)
        assert not swap.contains(page_id)
        with pytest.raises(KeyError):
            swap.read_page(page_id)

    def test_read_unwritten_raises(self, swap):
        with pytest.raises(KeyError):
            swap.read_page(PageId(0, 9))

    def test_counters(self, swap):
        page_id = PageId(0, 0)
        swap.write_page(page_id, bytes(PAGE))
        swap.read_page(page_id)
        assert swap.counters.pages_out == 1
        assert swap.counters.pages_in == 1


class TestValidation:
    def test_partial_page_rejected(self, swap):
        with pytest.raises(ValueError):
            swap.write_page(PageId(0, 0), b"short")

    def test_page_writes_never_rmw(self, swap):
        """Page-aligned whole-page writes avoid the partial-write path."""
        for n in range(4):
            swap.write_page(PageId(0, n), bytes(PAGE))
        assert swap.fs.counters.rmw_reads == 0
