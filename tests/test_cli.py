"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_present(self):
        parser = build_parser()
        for argv in (["figure1"], ["figure3"], ["table1"], ["demo"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_option(self):
        args = build_parser().parse_args(["figure3", "--scale", "0.5"])
        assert args.scale == 0.5


class TestExecution:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out
        assert "Figure 1(b)" in out

    def test_demo(self, capsys):
        assert main(["demo", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "unmodified system" in out
        assert "compression cache" in out

    def test_figure3_small(self, capsys):
        assert main(["figure3", "--scale", "0.05", "--mode", "rw"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 (rw)" in out

    def test_table1_single_row(self, capsys):
        assert main(["table1", "--scale", "0.04", "--rows", "compare"]) == 0
        out = capsys.readouterr().out
        assert "compare" in out

    def test_table1_unknown_row(self, capsys):
        assert main(["table1", "--rows", "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown rows" in err

    def test_inspect(self, capsys):
        assert main(["inspect", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "compression cache:" in out
        assert "legend" in out

    def test_trace_record_and_analyze(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main([
            "trace-record", "--workload", "thrasher", "--out", path,
            "--scale", "0.02", "--max-events", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert main(["trace-analyze", path, "--frames", "8,64"]) == 0
        out = capsys.readouterr().out
        assert "working-set knee" in out
        assert "64 frames" in out

    def test_trace_record_unknown_workload(self, capsys, tmp_path):
        assert main([
            "trace-record", "--workload", "doom", "--out",
            str(tmp_path / "x"),
        ]) == 2
        assert "unknown workload" in capsys.readouterr().err
