"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_present(self):
        parser = build_parser()
        for argv in (["figure1"], ["figure3"], ["table1"], ["demo"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_option(self):
        args = build_parser().parse_args(["figure3", "--scale", "0.5"])
        assert args.scale == 0.5


class TestExecution:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out
        assert "Figure 1(b)" in out

    def test_demo(self, capsys):
        assert main(["demo", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "unmodified system" in out
        assert "compression cache" in out

    def test_figure3_small(self, capsys):
        assert main(["figure3", "--scale", "0.05", "--mode", "rw"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 (rw)" in out

    def test_table1_single_row(self, capsys):
        assert main(["table1", "--scale", "0.04", "--rows", "compare"]) == 0
        out = capsys.readouterr().out
        assert "compare" in out

    def test_table1_unknown_row(self, capsys):
        assert main(["table1", "--rows", "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown rows" in err

    def test_inspect(self, capsys):
        assert main(["inspect", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "compression cache:" in out
        assert "legend" in out

    def test_perf_profile_writes_report(self, capsys, tmp_path, monkeypatch):
        # Keep the run small: profile one tiny workload, skip the sim
        # throughput pass, shrink the kernel corpus.
        import repro.perf as perf

        monkeypatch.setattr(
            perf, "bench_compression",
            lambda *a, **k: {"aggregate": {}, "kinds": {}},
        )
        monkeypatch.setattr(perf, "bench_micro", lambda **k: {"reps": 1})
        real_profile_sim = perf.profile_sim
        monkeypatch.setattr(
            perf, "profile_sim",
            lambda scale, top_n: real_profile_sim(
                scale=0.02, top_n=top_n, workloads=["thrasher"]
            ),
        )
        assert main([
            "perf", "--quick", "--skip-sim", "--profile", "7",
            "--out-dir", str(tmp_path),
        ]) == 0
        report = (tmp_path / "BENCH_profile.txt").read_text()
        assert "per-subsystem tottime" in report
        assert "top 7 functions by cumulative time" in report
        assert "repro.vm" in report
        out = capsys.readouterr().out
        assert "BENCH_profile.txt" in out

    def test_perf_profile_flag_parses_bare(self):
        args = build_parser().parse_args(["perf", "--profile"])
        assert args.profile == 25
        args = build_parser().parse_args(["perf"])
        assert args.profile is None

    def test_trace_record_and_analyze(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main([
            "trace-record", "--workload", "thrasher", "--out", path,
            "--scale", "0.02", "--max-events", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert main(["trace-analyze", path, "--frames", "8,64"]) == 0
        out = capsys.readouterr().out
        assert "working-set knee" in out
        assert "64 frames" in out

    def test_trace_record_unknown_workload(self, capsys, tmp_path):
        assert main([
            "trace-record", "--workload", "doom", "--out",
            str(tmp_path / "x"),
        ]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_trace_record_unwritable_out(self, capsys, tmp_path):
        assert main([
            "trace-record", "--workload", "thrasher", "--scale", "0.02",
            "--max-events", "50",
            "--out", str(tmp_path / "no" / "such" / "dir" / "t.trace"),
        ]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_trace_analyze_missing_file(self, capsys, tmp_path):
        assert main([
            "trace-analyze", str(tmp_path / "nonexistent.trace"),
        ]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "usage:" in err

    def test_trace_analyze_bad_header(self, capsys, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("this is not a trace\n")
        assert main(["trace-analyze", str(path)]) == 2
        assert "not a valid trace" in capsys.readouterr().err

    def test_trace_analyze_truncated(self, capsys, tmp_path):
        path = tmp_path / "trunc.trace"
        path.write_text("#repro-trace v1 5\n0 1 r\n")
        assert main(["trace-analyze", str(path)]) == 2
        err = capsys.readouterr().err
        assert "not a valid trace" in err
        assert "truncated" in err


class TestSweepCommand:
    ARGS = ["sweep", "--experiment", "figure3", "--mode", "rw",
            "--scale", "0.04"]

    def _digest(self, capsys, extra):
        assert main(self.ARGS + ["--digest"] + extra) == 0
        return capsys.readouterr().out.strip()

    def test_parallel_digest_equals_serial(self, capsys):
        serial = self._digest(capsys, ["--jobs", "1"])
        parallel = self._digest(capsys, ["--jobs", "2"])
        assert serial == parallel
        assert len(serial) == 64  # sha256 hex

    def test_resume_writes_checkpoint(self, capsys, tmp_path):
        ck = tmp_path / "ck.jsonl"
        first = self._digest(capsys, ["--resume", str(ck)])
        assert ck.exists() and ck.read_text().strip()
        size = ck.stat().st_size
        second = self._digest(capsys, ["--resume", str(ck)])
        assert first == second
        assert ck.stat().st_size == size  # nothing recomputed

    def test_plain_output_lists_points(self, capsys):
        assert main(self.ARGS + ["--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "figure3/rw" in out
        assert "computed" in out

    def test_jobs_option_on_figure3(self, capsys):
        assert main(["figure3", "--scale", "0.04", "--mode", "rw",
                     "--jobs", "2"]) == 0
        assert "Figure 3 (rw)" in capsys.readouterr().out


class TestRunCommand:
    def test_plain_run(self, capsys):
        assert main(["run", "--workload", "thrasher", "--scale",
                     "0.03"]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out
        assert "injected_faults" not in out  # no plan, no fault report

    def test_unknown_workload(self, capsys):
        assert main(["run", "--workload", "nonesuch"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_missing_plan_file(self, capsys):
        assert main(["run", "--workload", "thrasher",
                     "--faults", "/no/such/plan.json"]) == 2
        assert "cannot load fault plan" in capsys.readouterr().err

    def test_invalid_plan_file(self, capsys, tmp_path):
        bad = tmp_path / "plan.json"
        bad.write_text('{"devcie": {}}')
        assert main(["run", "--workload", "thrasher",
                     "--faults", str(bad)]) == 2
        assert "cannot load fault plan" in capsys.readouterr().err

    def test_fault_plan_reports_counters(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"seed": 3, "device": {"read_error_rate": 0.05,'
                        ' "write_error_rate": 0.05}}')
        assert main(["run", "--workload", "compare", "--scale", "0.03",
                     "--drain", "--faults", str(plan)]) == 0
        out = capsys.readouterr().out
        assert "injected_faults" in out

    def test_digest_deterministic_under_faults(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"seed": 8, "fragments":'
                        ' {"corrupt_read_rate": 0.05}}')
        argv = ["run", "--workload", "compare", "--scale", "0.03",
                "--drain", "--digest", "--faults", str(plan)]
        assert main(argv) == 0
        first = capsys.readouterr().out.strip()
        assert main(argv) == 0
        second = capsys.readouterr().out.strip()
        assert first == second
        assert len(first) == 64

    def test_json_output(self, capsys):
        import json as json_mod

        assert main(["run", "--workload", "thrasher", "--scale", "0.03",
                     "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert "elapsed_seconds" in payload
        assert "resilience" not in payload  # no plan installed

    def test_json_tier_report_for_explicit_tiers_only(self, capsys):
        """Per-tier occupancy/hit-rate telemetry rides on --json for
        explicit-tier runs, and never leaks into default-layout output
        or the digestable payload."""
        import json as json_mod

        assert main(["run", "--workload", "thrasher", "--scale", "0.03",
                     "--json"]) == 0
        assert "tier_report" not in json_mod.loads(
            capsys.readouterr().out
        )
        assert main(["run", "--workload", "thrasher", "--scale", "0.03",
                     "--tiers", "two-tier", "--json"]) == 0
        report = json_mod.loads(capsys.readouterr().out)["tier_report"]
        names = [t["name"] for t in report["tiers"]]
        assert names == ["l1", "l2"]
        capped = report["tiers"][0]
        assert capped["frames"] >= 0
        assert capped["max_frames"] is not None
        assert 0.0 <= capped["occupancy"] <= 1.0
        assert "windowed_miss_fraction" in report

    def test_tier_digest_ignores_the_tier_report(self, capsys):
        """--digest hashes RunResult.as_dict() alone, so adding the CLI
        tier report must not move any pinned digest."""
        argv = ["run", "--workload", "thrasher", "--scale", "0.03",
                "--tiers", "two-tier", "--digest"]
        assert main(argv) == 0
        digest = capsys.readouterr().out.strip()
        assert len(digest) == 64

    def test_control_flag_runs_and_reports(self, capsys):
        import json as json_mod

        assert main(["run", "--workload", "thrasher", "--scale", "0.03",
                     "--tiers", "two-tier", "--control", "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["control"]["ticks"] > 0


class TestLfsCommands:
    def test_lfs_run(self, capsys):
        assert main(["run", "--workload", "thrasher", "--scale", "0.03",
                     "--store", "lfs"]) == 0
        assert "elapsed" in capsys.readouterr().out

    def test_killed_digest_equals_uninterrupted(self, capsys):
        # --kill implies synchronous appends, so the uninterrupted
        # reference must run with --store-sync to match.
        base = ["run", "--workload", "thrasher", "--scale", "0.05",
                "--store", "lfs", "--store-sync", "--digest"]
        assert main(base) == 0
        reference = capsys.readouterr().out.strip()
        assert len(reference) == 64
        assert main(base + ["--kill", "append:2:0.5"]) == 0
        assert capsys.readouterr().out.strip() == reference

    def test_kill_requires_lfs_store(self, capsys):
        assert main(["run", "--workload", "thrasher",
                     "--kill", "append:1"]) == 2
        assert "--kill requires --store lfs" in capsys.readouterr().err

    def test_invalid_kill_spec(self, capsys):
        assert main(["run", "--workload", "thrasher", "--store", "lfs",
                     "--kill", "nowhere:1"]) == 2
        assert "kill" in capsys.readouterr().err

    def test_lfs_sweep_digest_deterministic(self, capsys):
        argv = ["sweep", "--experiment", "lfs", "--scale", "0.04",
                "--digest", "--jobs", "1"]
        assert main(argv) == 0
        first = capsys.readouterr().out.strip()
        assert main(argv) == 0
        assert capsys.readouterr().out.strip() == first
        assert len(first) == 64

    def test_lfs_sweep_plain_output(self, capsys):
        assert main(["sweep", "--experiment", "lfs", "--scale", "0.04",
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "lfs/rz57" in out
        assert "batching win" in out
