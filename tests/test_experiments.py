"""The experiment harness: scaling, calibration, rendering."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    PAPER_TABLE1,
    TABLE1_ORDER,
    Figure3Point,
    experiment_names,
    figure3_sweep,
    render_figure1,
    render_table1,
    run_pair,
    table1_row,
)
from repro.mem.page import mbytes
from repro.sim.machine import MachineConfig
from repro.workloads import Thrasher


class TestRunPair:
    def test_returns_both_systems(self):
        std, cc = run_pair(
            lambda: Thrasher(mbytes(0.8), cycles=2, write=True),
            MachineConfig(memory_bytes=mbytes(0.4)),
        )
        assert std.elapsed_seconds > cc.elapsed_seconds
        assert std.metrics_snapshot["accesses"] == (
            cc.metrics_snapshot["accesses"]
        )


class TestFigure3:
    def test_sweep_structure(self):
        result = figure3_sweep(
            write=True, scale=0.04, points=(0.5, 2.0), cycles=2
        )
        assert result.mode == "rw"
        assert len(result.points) == 2
        assert result.points[0].address_space_bytes < (
            result.points[1].address_space_bytes
        )

    def test_render(self):
        result = figure3_sweep(
            write=False, scale=0.04, points=(0.5,), cycles=2
        )
        text = result.render()
        assert "std_ro" in text and "cc_ro" in text

    def test_point_speedup(self):
        point = Figure3Point(1, 10.0, 2.0)
        assert point.speedup == 5.0
        assert Figure3Point(1, 1.0, 0.0).speedup == float("inf")


class TestTable1:
    def test_paper_reference_rows_complete(self):
        assert set(TABLE1_ORDER) == set(PAPER_TABLE1)
        for row in PAPER_TABLE1.values():
            std, cc, speedup, ratio, uncompressible = row
            assert speedup == pytest.approx(std / cc, abs=0.01)

    def test_unknown_application_rejected(self):
        with pytest.raises(KeyError):
            table1_row("netscape", scale=0.05)

    def test_uncalibrated_row(self):
        row = table1_row("compare", scale=0.04, calibrate=False)
        assert row.compute_seconds_per_ref == 0.0
        assert row.speedup > 1.0

    def test_calibration_targets_paper_std_time(self):
        scale = 0.04
        row = table1_row("gold_create", scale=scale)
        target = PAPER_TABLE1["gold_create"][0] * scale
        # Either calibration hit the target, or paging alone already
        # exceeded it (compute clamped to zero).
        if row.compute_seconds_per_ref > 0:
            assert row.std_seconds == pytest.approx(target, rel=0.25)

    def test_render_includes_paper_columns(self):
        row = table1_row("compare", scale=0.04, calibrate=False)
        text = render_table1([row])
        assert "compare" in text
        assert "2.68" in text  # the paper's number, shown alongside


class TestFigure1Rendering:
    def test_render(self):
        text = render_figure1()
        assert "Figure 1(a)" in text
        assert "Figure 1(b)" in text
        assert "c=16" in text


class TestExperimentRegistry:
    """The CLI derives its --experiment choices from the registry; this
    is the drift guard that keeps the two from diverging again."""

    def test_registry_names_are_stable(self):
        assert experiment_names() == (
            "figure3", "table1", "ablations", "tiers",
            "kernels", "lfs", "control",
        )

    def test_cli_choices_come_from_the_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        sweep = next(
            action
            for action in parser._subparsers._group_actions[0]
            .choices["sweep"]._actions
            if action.dest == "experiment"
        )
        assert tuple(sweep.choices) == experiment_names()

    def test_every_experiment_builds_points(self):
        options = {"mode": "both", "seed": 0}
        for name, experiment in EXPERIMENTS.items():
            points = experiment.points(0.05, options)
            assert points, f"{name} produced no sweep points"
            keys = [p.key for p in points]
            assert len(keys) == len(set(keys)), f"{name} has dup keys"

    def test_renderers_are_wired_where_output_exists(self):
        rendered = {n for n, e in EXPERIMENTS.items()
                    if e.render is not None}
        assert rendered == {"kernels", "lfs", "control"}
