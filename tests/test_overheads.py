"""Section 4.4 space-overhead accounting, end to end.

The paper itemizes the compression cache's memory costs; this module
checks both the constants and that the machine builder actually charges
them against usable memory.
"""

import pytest

from repro.ccache.header import (
    CODE_SIZE_BYTES,
    COMPRESSED_PAGE_HEADER_BYTES,
    FRAME_HEADER_BYTES,
    HASH_TABLE_BYTES,
    SLOT_DESCRIPTOR_BYTES,
    cache_metadata_bytes,
)
from repro.mem.page import mbytes
from repro.mem.pagetable import page_table_overhead_bytes
from repro.sim.machine import Machine, MachineConfig
from repro.workloads import SyntheticWorkload

PAGE = 4096


class TestPaperNumbers:
    def test_sixty_mbyte_example(self):
        """"If the collective virtual memory of all running processes is
        60 Mbytes, with 4-Kbyte pages, the per-page overhead for the
        compression cache would total 120 Kbytes."""
        pages = mbytes(60) // PAGE
        extra = (
            page_table_overhead_bytes(pages, True)
            - page_table_overhead_bytes(pages, False)
        )
        assert extra == 120 * 1024

    def test_frame_header_is_point_six_percent(self):
        assert FRAME_HEADER_BYTES / PAGE == pytest.approx(0.006, abs=5e-4)

    def test_hash_table_and_code_sizes(self):
        assert HASH_TABLE_BYTES == 16 * 1024
        assert CODE_SIZE_BYTES == 22 * 1024

    def test_metadata_formula_composition(self):
        total = cache_metadata_bytes(
            max_cache_frames=2048, mapped_frames=512, compressed_pages=1500
        )
        assert total == (
            SLOT_DESCRIPTOR_BYTES * 2048
            + FRAME_HEADER_BYTES * 512
            + COMPRESSED_PAGE_HEADER_BYTES * 1500
            + HASH_TABLE_BYTES
        )


class TestChargedAgainstMemory:
    def _frames(self, compression_cache, space_mb=8):
        workload = SyntheticWorkload(mbytes(space_mb), references=1)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(2),
                          compression_cache=compression_cache),
            workload.build(),
        )
        return machine.user_frames

    def test_cc_costs_real_frames(self):
        assert self._frames(True) < self._frames(False)

    def test_overhead_grows_with_address_space(self):
        small = self._frames(True, space_mb=2)
        large = self._frames(True, space_mb=32)
        # 8 extra bytes/page * (32-2) MB / 4 KB = 61440 bytes = 15 frames,
        # minus the standard 4 bytes/page growth shared by both systems.
        assert small - large >= (mbytes(30) // PAGE) * 8 // PAGE

    def test_exact_overhead_difference(self):
        space_pages = mbytes(8) // PAGE
        std_overhead = page_table_overhead_bytes(space_pages, False)
        cc_overhead = (
            page_table_overhead_bytes(space_pages, True)
            + HASH_TABLE_BYTES
            + CODE_SIZE_BYTES
            + SLOT_DESCRIPTOR_BYTES * (mbytes(2) // PAGE)
        )
        expected_frame_gap = (
            (mbytes(2) - std_overhead) // PAGE
            - (mbytes(2) - cc_overhead) // PAGE
        )
        assert self._frames(False) - self._frames(True) == expected_frame_gap
