"""Integration: the paper's qualitative results at miniature scale.

These are the fastest whole-system checks of "who wins, by roughly what
factor, where crossovers fall" — the benchmark suite runs the fuller
versions.
"""

import pytest

from repro.experiments import figure3_sweep, run_pair, table1_row
from repro.mem.page import mbytes
from repro.sim.machine import MachineConfig
from repro.workloads import SyntheticWorkload, Thrasher


class TestThrasherRegimes:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figure3_sweep(
            write=True, scale=0.05, points=(0.5, 1.5, 5.0), cycles=2
        )

    def test_no_paging_below_memory(self, sweep):
        assert sweep.points[0].speedup == pytest.approx(1.0, abs=0.05)

    def test_big_win_in_compressed_band(self, sweep):
        assert sweep.points[1].speedup > 3.0

    def test_modest_win_beyond(self, sweep):
        assert 1.0 < sweep.points[2].speedup < sweep.points[1].speedup


class TestApplicationShapes:
    def test_compare_wins_clearly(self):
        row = table1_row("compare", scale=0.05)
        assert row.speedup > 1.5
        assert row.uncompressible_percent < 5.0

    def test_gold_warm_loses(self):
        row = table1_row("gold_warm", scale=0.05)
        assert row.speedup < 1.0
        assert 45.0 < row.ratio_percent < 75.0

    def test_sort_random_mostly_uncompressible(self):
        row = table1_row("sort_random", scale=0.05, calibrate=False)
        assert row.uncompressible_percent > 90.0
        assert row.speedup < 1.05


class TestCompressionIsTheDifference:
    def test_incompressible_data_neutralizes_the_cache(self):
        """With random pages the two systems converge (modulo the wasted
        compression effort)."""
        config = MachineConfig(memory_bytes=mbytes(0.7))
        std, cc = run_pair(
            lambda: SyntheticWorkload(
                mbytes(2), references=3000, compressible_fraction=0.0,
                hot_probability=0.3, write_fraction=0.5, seed=21,
            ),
            config,
        )
        assert cc.elapsed_seconds == pytest.approx(
            std.elapsed_seconds, rel=0.25
        )

    def test_compressible_data_engages_the_cache(self):
        config = MachineConfig(memory_bytes=mbytes(0.7))
        std, cc = run_pair(
            lambda: Thrasher(mbytes(1.4), cycles=3, write=True),
            config,
        )
        assert std.elapsed_seconds / cc.elapsed_seconds > 3.0
