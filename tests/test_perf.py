"""Perf harness plumbing: micro-benchmarks, profiling, baseline checks.

The actual throughput numbers are host-dependent and not asserted here;
these tests cover the machinery — report shapes, attribution bucketing,
and the regression-check logic CI relies on.
"""

import json

from repro.perf import (
    SIM_CHECK_TOLERANCE,
    _subsystem_of,
    bench_micro,
    bench_sim,
    check_against_baseline,
    check_service_baseline,
    profile_sim,
)
from repro.sweep import spec_digest


class TestSubsystemAttribution:
    def test_repro_packages(self):
        assert _subsystem_of(
            "/x/src/repro/compression/lzrw1.py"
        ) == "repro.compression"
        assert _subsystem_of("/x/src/repro/perf.py") == "repro.perf"

    def test_non_repro(self):
        assert _subsystem_of("~") == "builtins"
        assert _subsystem_of("<string>") == "builtins"
        assert _subsystem_of("/usr/lib/python3/json/decoder.py") == (
            "stdlib/other"
        )


class TestBenchMicro:
    def test_reports_positive_rates(self):
        result = bench_micro(reps=1)
        for key in (
            "lru_touch_evict_ops_s",
            "fragstore_put_get_gc_ops_s",
            "sampler_hit_miss_ops_s",
        ):
            assert result[key] > 0, key


class TestProfileSim:
    def test_report_sections(self):
        report = profile_sim(scale=0.02, top_n=5, workloads=["thrasher"])
        assert "per-subsystem tottime" in report
        assert "repro.vm" in report
        assert "by cumulative time" in report


def _write_baseline(tmp_path, **extra):
    baseline = {"aggregate_speedup": {"lzrw1": 2.0}}
    baseline.update(extra)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))
    return path


def _compression(speedup=2.0):
    return {"aggregate": {"lzrw1": {"speedup": speedup}}}


def _sim(scale=0.05, pps=1000.0):
    return {
        "scale": scale,
        "workloads": {"thrasher": {"pages_per_second": pps}},
    }


class TestBaselineCheck:
    def test_sim_within_tolerance_passes(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        ok_pps = 1000.0 * (1.0 - SIM_CHECK_TOLERANCE) + 1
        assert check_against_baseline(
            _compression(), path, sim=_sim(pps=ok_pps)
        ) == []

    def test_sim_regression_fails(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        bad_pps = 1000.0 * (1.0 - SIM_CHECK_TOLERANCE) - 1
        failures = check_against_baseline(
            _compression(), path, sim=_sim(pps=bad_pps)
        )
        assert len(failures) == 1
        assert "thrasher" in failures[0]

    def test_scale_mismatch_skips_sim_check(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        assert check_against_baseline(
            _compression(), path, sim=_sim(scale=0.12, pps=1.0)
        ) == []

    def test_missing_workload_fails(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"compare": 1000.0},
        )
        failures = check_against_baseline(
            _compression(), path, sim=_sim()
        )
        assert failures and "compare" in failures[0]

    def test_no_sim_skips_sim_check(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        assert check_against_baseline(_compression(), path, sim=None) == []

    def test_kernel_speedup_regression_still_fails(self, tmp_path):
        path = _write_baseline(tmp_path)
        failures = check_against_baseline(_compression(speedup=1.0), path)
        assert failures and "lzrw1" in failures[0]


class TestSimLatency:
    def test_bench_sim_reports_percentiles(self):
        result = bench_sim(scale=0.02, workloads=["thrasher"], reps=1)
        row = result["workloads"]["thrasher"]
        latency = row["latency_us"]
        assert latency["count"] == row["references"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]


def _service_bench(digest="d" * 64, ops_s=1000.0, speedup=1.0,
                   p99=5000, cpus=1, spec=None):
    spec = spec if spec is not None else {"ops": 100, "seed": 1}
    return {
        "cpu_count": cpus,
        "spec": spec,
        "runs": {"4": {"latency_us": {"p99": p99}}},
        "determinism": {"ledger_digest": digest},
        "scaling": {
            "single_shard_ops_s": ops_s / max(speedup, 1e-9),
            "best_ops_s": ops_s,
            "best_shards": 4,
            "speedup": speedup,
        },
    }


def _write_service_baseline(tmp_path, **service):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"service": service}))
    return path


class TestServiceBaselineCheck:
    SPEC = {"ops": 100, "seed": 1}

    def test_all_gates_pass(self, tmp_path):
        path = _write_service_baseline(
            tmp_path,
            ledger_digest="d" * 64,
            spec_digest=spec_digest(self.SPEC),
            min_ops_per_second=1000.0,
            min_speedup=3.0,
            min_speedup_cpus=4,
            max_p99_us=10000,
        )
        bench = _service_bench(ops_s=900.0)  # within tolerance
        assert check_service_baseline(bench, path) == []

    def test_digest_mismatch_is_a_failure(self, tmp_path):
        path = _write_service_baseline(
            tmp_path,
            ledger_digest="d" * 64,
            spec_digest=spec_digest(self.SPEC),
        )
        failures = check_service_baseline(
            _service_bench(digest="e" * 64), path
        )
        assert failures and "determinism" in failures[0]

    def test_digest_skipped_for_different_spec(self, tmp_path):
        path = _write_service_baseline(
            tmp_path,
            ledger_digest="d" * 64,
            spec_digest=spec_digest(self.SPEC),
        )
        bench = _service_bench(digest="e" * 64, spec={"ops": 999})
        assert check_service_baseline(bench, path) == []

    def test_throughput_floor(self, tmp_path):
        path = _write_service_baseline(
            tmp_path, min_ops_per_second=1000.0
        )
        bad = 1000.0 * 0.69  # below the 30% tolerance band
        failures = check_service_baseline(
            _service_bench(ops_s=bad), path
        )
        assert failures and "throughput" in failures[0]

    def test_scaling_gate_needs_enough_cpus(self, tmp_path):
        path = _write_service_baseline(
            tmp_path, min_speedup=3.0, min_speedup_cpus=4
        )
        # 1-CPU host: the scaling gate must not fire.
        assert check_service_baseline(
            _service_bench(speedup=1.0, cpus=1), path
        ) == []
        # 4-CPU host: it must.
        failures = check_service_baseline(
            _service_bench(speedup=1.0, cpus=4), path
        )
        assert failures and "scaling" in failures[0]
        # And a genuine 3x pass clears it.
        assert check_service_baseline(
            _service_bench(speedup=3.2, cpus=4), path
        ) == []

    def test_p99_ceiling(self, tmp_path):
        path = _write_service_baseline(tmp_path, max_p99_us=1000)
        failures = check_service_baseline(
            _service_bench(p99=2000), path
        )
        assert failures and "p99" in failures[0]

    def test_missing_service_section(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({}))
        failures = check_service_baseline(_service_bench(), path)
        assert failures and "service" in failures[0]
