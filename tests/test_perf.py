"""Perf harness plumbing: micro-benchmarks, profiling, baseline checks.

The actual throughput numbers are host-dependent and not asserted here;
these tests cover the machinery — report shapes, attribution bucketing,
and the regression-check logic CI relies on.
"""

import json

from repro.perf import (
    SIM_CHECK_TOLERANCE,
    _subsystem_of,
    bench_micro,
    check_against_baseline,
    profile_sim,
)


class TestSubsystemAttribution:
    def test_repro_packages(self):
        assert _subsystem_of(
            "/x/src/repro/compression/lzrw1.py"
        ) == "repro.compression"
        assert _subsystem_of("/x/src/repro/perf.py") == "repro.perf"

    def test_non_repro(self):
        assert _subsystem_of("~") == "builtins"
        assert _subsystem_of("<string>") == "builtins"
        assert _subsystem_of("/usr/lib/python3/json/decoder.py") == (
            "stdlib/other"
        )


class TestBenchMicro:
    def test_reports_positive_rates(self):
        result = bench_micro(reps=1)
        for key in (
            "lru_touch_evict_ops_s",
            "fragstore_put_get_gc_ops_s",
            "sampler_hit_miss_ops_s",
        ):
            assert result[key] > 0, key


class TestProfileSim:
    def test_report_sections(self):
        report = profile_sim(scale=0.02, top_n=5, workloads=["thrasher"])
        assert "per-subsystem tottime" in report
        assert "repro.vm" in report
        assert "by cumulative time" in report


def _write_baseline(tmp_path, **extra):
    baseline = {"aggregate_speedup": {"lzrw1": 2.0}}
    baseline.update(extra)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))
    return path


def _compression(speedup=2.0):
    return {"aggregate": {"lzrw1": {"speedup": speedup}}}


def _sim(scale=0.05, pps=1000.0):
    return {
        "scale": scale,
        "workloads": {"thrasher": {"pages_per_second": pps}},
    }


class TestBaselineCheck:
    def test_sim_within_tolerance_passes(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        ok_pps = 1000.0 * (1.0 - SIM_CHECK_TOLERANCE) + 1
        assert check_against_baseline(
            _compression(), path, sim=_sim(pps=ok_pps)
        ) == []

    def test_sim_regression_fails(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        bad_pps = 1000.0 * (1.0 - SIM_CHECK_TOLERANCE) - 1
        failures = check_against_baseline(
            _compression(), path, sim=_sim(pps=bad_pps)
        )
        assert len(failures) == 1
        assert "thrasher" in failures[0]

    def test_scale_mismatch_skips_sim_check(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        assert check_against_baseline(
            _compression(), path, sim=_sim(scale=0.12, pps=1.0)
        ) == []

    def test_missing_workload_fails(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"compare": 1000.0},
        )
        failures = check_against_baseline(
            _compression(), path, sim=_sim()
        )
        assert failures and "compare" in failures[0]

    def test_no_sim_skips_sim_check(self, tmp_path):
        path = _write_baseline(
            tmp_path, sim_scale=0.05,
            sim_pages_per_second={"thrasher": 1000.0},
        )
        assert check_against_baseline(_compression(), path, sim=None) == []

    def test_kernel_speedup_regression_still_fails(self, tmp_path):
        path = _write_baseline(tmp_path)
        failures = check_against_baseline(_compression(speedup=1.0), path)
        assert failures and "lzrw1" in failures[0]
