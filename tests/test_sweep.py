"""The parallel sweep runner: determinism, checkpointing, fault
tolerance (see docs/sweep.md)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ablation_points,
    figure3_points,
    figure3_sweep,
    table1,
    table1_points,
)
from repro.sweep import (
    SELFTEST_RUNNER,
    SweepError,
    SweepInterrupted,
    SweepPoint,
    load_checkpoint,
    run_sweep,
    selftest_points,
    spec_digest,
)


class TestSweepPoint:
    def test_key_defaults_to_runner_and_digest(self):
        point = SweepPoint(SELFTEST_RUNNER, {"value": 3})
        assert point.key.startswith(SELFTEST_RUNNER)
        assert spec_digest({"value": 3}) in point.key

    def test_key_stable_across_spec_ordering(self):
        a = SweepPoint(SELFTEST_RUNNER, {"a": 1, "b": 2})
        b = SweepPoint(SELFTEST_RUNNER, {"b": 2, "a": 1})
        assert a.key == b.key

    def test_bad_runner_path_rejected(self):
        with pytest.raises(ValueError):
            SweepPoint("no-colon-here", {})

    def test_unresolvable_runner_fails_fast(self):
        point = SweepPoint("repro.sweep:not_a_function", {}, key="x")
        with pytest.raises(SweepError):
            run_sweep([point])

    def test_duplicate_key_with_different_spec_rejected(self):
        points = [
            SweepPoint(SELFTEST_RUNNER, {"value": 1}, key="dup"),
            SweepPoint(SELFTEST_RUNNER, {"value": 2}, key="dup"),
        ]
        with pytest.raises(SweepError):
            run_sweep(points)


class TestSerialSweep:
    def test_results_sorted_by_key(self):
        points = list(reversed(selftest_points(5)))
        result = run_sweep(points)
        assert list(result.results) == sorted(result.results)
        assert result.computed == 5

    def test_in_order_follows_points_order(self):
        points = selftest_points(4)
        result = run_sweep(list(reversed(points)))
        values = [r["value"] for r in result.in_order(points)]
        assert values == [0, 1, 2, 3]

    def test_failed_point_reported_not_raised(self, tmp_path):
        marker = tmp_path / "calls"
        point = SweepPoint(
            SELFTEST_RUNNER,
            {"value": 1, "fail_marker": str(marker), "fail_times": 99},
            key="doomed",
        )
        result = run_sweep([point], retries=1)
        assert "doomed" in result.failures
        with pytest.raises(SweepError):
            result.in_order([point])

    def test_retry_after_transient_failure(self, tmp_path):
        marker = tmp_path / "calls"
        point = SweepPoint(
            SELFTEST_RUNNER,
            {"value": 7, "fail_marker": str(marker), "fail_times": 2},
            key="flaky",
        )
        result = run_sweep([point], retries=2)
        assert result.results["flaky"]["value"] == 7
        assert result.retried == 2
        assert not result.failures


class TestParallelSweep:
    def test_parallel_digest_matches_serial(self):
        points = selftest_points(8)
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=4)
        assert serial.digest() == parallel.digest()

    def test_worker_exception_is_retried(self, tmp_path):
        """A worker raising mid-sweep is retried; the sweep completes."""
        marker = tmp_path / "calls"
        points = selftest_points(4)
        points[2] = SweepPoint(
            SELFTEST_RUNNER,
            {"value": 2, "fail_marker": str(marker), "fail_times": 1},
            key=points[2].key,
        )
        result = run_sweep(points, jobs=2, retries=2)
        assert not result.failures
        assert result.retried >= 1
        assert [r["value"] for r in result.in_order(points)] == [0, 1, 2, 3]

    def test_worker_death_breaks_and_rebuilds_pool(self, tmp_path):
        """os._exit in a worker breaks the pool; the sweep rebuilds it
        and still completes every point."""
        marker = tmp_path / "deaths"
        points = selftest_points(5)
        points[0] = SweepPoint(
            SELFTEST_RUNNER,
            {"value": 0, "die_marker": str(marker), "die_times": 1},
            key=points[0].key,
        )
        result = run_sweep(points, jobs=2, retries=3)
        assert not result.failures
        assert len(result.results) == 5

    def test_timeout_fails_spinning_point(self):
        points = [
            SweepPoint(
                SELFTEST_RUNNER, {"value": 1, "sleep_s": 30.0}, key="slow"
            )
        ]
        result = run_sweep(points, jobs=1, timeout=0.2, retries=0)
        assert "slow" in result.failures
        assert "PointTimeout" in result.failures["slow"]


class TestCheckpoint:
    def test_resume_skips_completed_points(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        points = selftest_points(6)
        first = run_sweep(points, checkpoint=str(ck))
        assert first.computed == 6
        second = run_sweep(points, checkpoint=str(ck))
        assert second.computed == 0
        assert second.resumed == 6
        assert second.digest() == first.digest()

    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        """Kill a sweep midway (simulated by checkpointing a prefix);
        re-invoking with the same checkpoint only runs the remainder,
        proven by a side-effect call counter."""
        ck = tmp_path / "sweep.jsonl"
        marker = tmp_path / "calls"
        extra = {"fail_marker": str(marker), "fail_times": 0}
        points = selftest_points(8, extra=extra)
        run_sweep(points[:3], checkpoint=str(ck))
        assert marker.read_text().count("x") == 3
        result = run_sweep(points, checkpoint=str(ck))
        assert marker.read_text().count("x") == 8  # only 5 new calls
        assert result.resumed == 3 and result.computed == 5

    def test_torn_final_line_tolerated(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        points = selftest_points(3)
        run_sweep(points, checkpoint=str(ck))
        with open(ck, "a") as handle:
            handle.write('{"key": "torn", "runner":')  # interrupted write
        result = run_sweep(points, checkpoint=str(ck))
        assert result.resumed == 3

    def test_spec_change_invalidates_checkpointed_point(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep(selftest_points(2), checkpoint=str(ck))
        changed = selftest_points(2, extra={"tweak": 1})
        result = run_sweep(changed, checkpoint=str(ck))
        assert result.resumed == 0
        assert result.computed == 2

    def test_checkpoint_records_are_json_with_spec(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep(selftest_points(2), checkpoint=str(ck))
        records = [json.loads(line) for line in ck.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            assert record["runner"] == SELFTEST_RUNNER
            assert "result" in record and "spec" in record
            assert record["elapsed_s"] >= 0
        loaded = load_checkpoint(ck)
        assert set(loaded) == {"selftest/0000", "selftest/0001"}


#: Driver for the SIGINT regression test: a slow sweep the parent can
#: interrupt mid-run, exiting 130 the way the CLI does.
_SIGINT_DRIVER = """\
import sys
from repro.sweep import SweepInterrupted, run_sweep, selftest_points

points = selftest_points(10, extra={"sleep_s": 0.2})
try:
    run_sweep(points, jobs=1, checkpoint=sys.argv[1])
except SweepInterrupted as exc:
    print(f"interrupted; {len(exc.result.results)} checkpointed",
          flush=True)
    sys.exit(130)
sys.exit(0)
"""


class TestInterrupt:
    """Ctrl-C flushes the checkpoint and surfaces as SweepInterrupted,
    so an interrupted sweep resumes instead of restarting."""

    def test_interrupt_raises_with_partial_result(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        marker = tmp_path / "interrupts"
        points = selftest_points(6)
        # Point 3 raises KeyboardInterrupt (once) — Ctrl-C mid-sweep.
        points[3] = SweepPoint(
            SELFTEST_RUNNER,
            {"value": 3, "interrupt_marker": str(marker)},
            key=points[3].key,
        )
        with pytest.raises(SweepInterrupted) as info:
            run_sweep(points, checkpoint=str(ck))
        exc = info.value
        assert exc.result.interrupted
        assert str(exc.checkpoint) == str(ck)
        assert "3" in str(exc)  # the resume hint counts completed points
        # The completed prefix reached disk before the exception.
        assert len(load_checkpoint(ck)) == 3

    def test_interrupted_checkpoint_resumes_cleanly(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        marker = tmp_path / "interrupts"
        points = selftest_points(6)
        points[3] = SweepPoint(
            SELFTEST_RUNNER,
            {"value": 3, "interrupt_marker": str(marker)},
            key=points[3].key,
        )
        with pytest.raises(SweepInterrupted):
            run_sweep(points, checkpoint=str(ck))
        # Rerun: the marker already fired, so the sweep completes,
        # resuming the checkpointed prefix without recomputing it.
        result = run_sweep(points, checkpoint=str(ck))
        assert result.resumed == 3 and result.computed == 3
        assert not result.failures and not result.interrupted

    def test_interrupt_without_checkpoint_keeps_partial_in_memory(
        self, tmp_path
    ):
        marker = tmp_path / "interrupts"
        points = selftest_points(4)
        points[2] = SweepPoint(
            SELFTEST_RUNNER,
            {"value": 2, "interrupt_marker": str(marker)},
            key=points[2].key,
        )
        with pytest.raises(SweepInterrupted) as info:
            run_sweep(points)
        assert len(info.value.result.results) == 2
        assert info.value.checkpoint is None
        assert "no checkpoint" in str(info.value).lower()

    def test_sigint_mid_sweep_flushes_and_exits_130(self, tmp_path):
        """A real SIGINT against a live process: the completed prefix
        must be on disk and an in-process rerun must resume it."""
        ck = tmp_path / "sweep.jsonl"
        driver = tmp_path / "driver.py"
        driver.write_text(_SIGINT_DRIVER)
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = str(src)
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(ck)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline:
                if ck.exists() and len(ck.read_text().splitlines()) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sweep never checkpointed a point")
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, (out, err)
        assert "interrupted" in out
        done = load_checkpoint(ck)
        assert 2 <= len(done) < 10
        # Resume finishes only the remainder.
        points = selftest_points(10, extra={"sleep_s": 0.2})
        result = run_sweep(points, checkpoint=str(ck))
        assert result.resumed == len(done)
        assert result.computed == 10 - len(done)


class TestExperimentSweeps:
    """The refactored experiment harnesses on top of the runner."""

    POINTS = (0.5, 1.5, 2.5)

    def test_figure3_jobs_1_and_4_byte_identical(self):
        serial = figure3_sweep(
            write=True, scale=0.04, points=self.POINTS, cycles=2, jobs=1
        )
        parallel = figure3_sweep(
            write=True, scale=0.04, points=self.POINTS, cycles=2, jobs=4
        )
        assert serial.render() == parallel.render()
        assert [p.address_space_bytes for p in serial.points] == [
            p.address_space_bytes for p in parallel.points
        ]

    def test_figure3_checkpoint_resume(self, tmp_path):
        ck = tmp_path / "fig3.jsonl"
        first = figure3_sweep(
            write=False, scale=0.04, points=self.POINTS, cycles=2,
            checkpoint=str(ck),
        )
        lines_after_first = len(ck.read_text().splitlines())
        second = figure3_sweep(
            write=False, scale=0.04, points=self.POINTS, cycles=2,
            checkpoint=str(ck),
        )
        assert first.render() == second.render()
        # Nothing recomputed: the checkpoint did not grow.
        assert len(ck.read_text().splitlines()) == lines_after_first

    def test_figure3_seed_changes_points_not_structure(self):
        base = figure3_points(write=True, scale=0.1, seed=0)
        other = figure3_points(write=True, scale=0.1, seed=1)
        assert len(base) == len(other)
        assert {p.key for p in base}.isdisjoint({p.key for p in other})

    def test_table1_parallel_matches_serial(self):
        names = ["compare"]
        serial = table1(scale=0.04, names=names, jobs=1)
        parallel = table1(scale=0.04, names=names, jobs=2)
        assert len(serial) == len(parallel) == 1
        assert serial[0] == parallel[0]

    def test_point_builders_produce_unique_json_specs(self):
        points = (
            figure3_points(write=True, scale=0.1)
            + figure3_points(write=False, scale=0.1)
            + table1_points(scale=0.1)
            + ablation_points(0.1)
        )
        keys = [p.key for p in points]
        assert len(keys) == len(set(keys))
        for point in points:
            json.dumps(point.spec)  # every spec must serialize
