"""Two-tier chains end to end: demotion, faulting, reporting, digests.

The pinned digests play the same role as tests/sim/test_golden_digests.py
for the default layout: they freeze the complete ``RunResult.as_dict()``
of a two-tier run so later refactors of the chain machinery cannot
silently change its simulation behaviour.  A mismatch means behaviour
moved; fix the change, do not refresh the digest (unless the PR's point
is a deliberate semantics change).
"""

import hashlib
import json

import pytest

from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.tiers.spec import TierSpec, parse_tier_specs
from repro.workloads import Thrasher

#: SHA-256 of canonical JSON of RunResult.as_dict() for two-tier runs of
#: the bench_sim workloads (scale 0.12, memoized sampler), captured when
#: the tier chain was introduced.
GOLDEN_TWO_TIER = {
    "thrasher":
        "028f727c16540df8f999da898ee117b20bcaff4f102b0bba5f592e8f5d17177f",
    "gold-warm":
        "a8d976c53f52d67be3b807e8f5fa7dcbc0bf290fdb238d9f2d700d3795796e66",
}


def two_tier_machine(scale=0.08, paranoid=False, cycles=3):
    memory = mbytes(6 * scale)
    workload = Thrasher(int(memory * 2), cycles=cycles, write=True)
    config = MachineConfig(
        memory_bytes=memory,
        tiers=parse_tier_specs("two-tier"),
        paranoid=paranoid,
    )
    return Machine(config, workload.build()), workload


class TestTwoTierEndToEnd:
    def test_pages_demote_and_fault_back(self):
        machine, workload = two_tier_machine()
        result = SimulationEngine(machine).run(workload.references())
        chain = machine.chain
        assert len(chain.tiers) == 2
        assert (chain.warmest.name, chain.coldest.name) == ("l1", "l2")
        # The thrasher overcommits a capped L1: pages must demote to L2
        # and the DEMOTE recompression time must be charged.
        assert chain.demoted_pages() > 0
        assert chain.warmest.sink.demoted_pages == chain.demoted_pages()
        assert result.time_breakdown.get("demote", 0.0) > 0.0
        assert machine.vm.metrics.faults.total > 0

    def test_two_tier_contents_verify_paranoid(self):
        """Every fault decompresses with the right tier's kernel.

        Paranoid mode re-derives each faulted page from its compressed
        payload and compares against ground truth, so a kernel mismatch
        anywhere in the demote/fault paths (L1 payload decoded as LZSS,
        store payload decoded as LZRW1, ...) fails loudly.
        """
        machine, workload = two_tier_machine(scale=0.05, paranoid=True,
                                             cycles=2)
        SimulationEngine(machine).run(workload.references())
        assert machine.chain.demoted_pages() > 0

    def test_terminal_tier_owns_store_writes(self):
        """Only L2 write-outs update per-page saved versions; demotions
        out of L1 stay in memory (no I/O, no version updates)."""
        machine, workload = two_tier_machine()
        SimulationEngine(machine).run(workload.references())
        l1, l2 = machine.chain.tiers
        assert l1.cache.written_callback is None
        assert l2.cache.written_callback is not None

    def test_colder_tier_competes_through_allocator(self):
        machine, workload = two_tier_machine()
        SimulationEngine(machine).run(workload.references())
        victims = machine.allocator.counters.snapshot()
        assert "cc:l2" in victims

    def test_result_reports_tiers_and_gate(self):
        machine, workload = two_tier_machine()
        result = SimulationEngine(machine).run(workload.references())
        payload = result.as_dict()
        assert payload["gate"]["probes"] > 0
        names = [tier["name"] for tier in payload["tiers"]]
        assert names == ["l1", "l2", "store"]
        l1 = payload["tiers"][0]
        assert l1["compressor"] == "lzrw1"
        assert l1["demoted_out"] == machine.chain.demoted_pages()

    def test_default_config_reports_neither(self):
        """The default layout's serialized form — and so the 14 golden
        digests — must not grow new keys."""
        memory = mbytes(6 * 0.08)
        workload = Thrasher(int(memory * 2), cycles=2, write=True)
        machine = Machine(
            MachineConfig(memory_bytes=memory), workload.build()
        )
        result = SimulationEngine(machine).run(workload.references())
        payload = result.as_dict()
        assert "tiers" not in payload
        assert "gate" not in payload

    def test_config_rejects_bad_chains(self):
        with pytest.raises(ValueError, match="unique"):
            MachineConfig(tiers=(TierSpec(name="cc"), TierSpec(name="cc")))
        with pytest.raises(ValueError, match="at least one"):
            MachineConfig(tiers=())


class TestTwoTierGoldenDigests:
    @pytest.mark.parametrize("name", sorted(GOLDEN_TWO_TIER))
    def test_two_tier_digest_pinned(self, name):
        from repro.cli import WORKLOAD_FACTORIES

        workload = WORKLOAD_FACTORIES[name](0.12)
        config = MachineConfig(
            memory_bytes=mbytes(6 * 0.12),
            tiers=parse_tier_specs("two-tier"),
        )
        machine = Machine(config, workload.build())
        result = SimulationEngine(machine).run(workload.references())
        blob = json.dumps(
            result.as_dict(), sort_keys=True, separators=(",", ":")
        ).encode()
        digest = hashlib.sha256(blob).hexdigest()
        assert digest == GOLDEN_TWO_TIER[name], (
            f"{name}: two-tier simulation output diverged from the pinned "
            "behaviour"
        )
