"""Property: demotion only happens under genuine warm-tier pressure.

A page must never move to a colder tier while the warmer tier still has
reclaimable (clean, already-backed) space — demotion pays a decompress +
recompress, so spending it while a free-to-drop frame exists would be
pure waste.  The shrink path encodes this by preferring all-clean victim
frames; the property pins it from the outside: every
:class:`~repro.tiers.compressed.DemotionSink` write must be observed
with zero reclaimable frames at the moment its source tier's shrink
began.

Cleaners are disabled throughout: the cleaner *deliberately* writes
dirty pages ahead of pressure (that is its job, and the copies stay in
the warm tier), so the invariant is about the shrink path only.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccache.cleaner import CleanerPolicy
from repro.mem.page import PageId, mbytes
from repro.mem.segment import AddressSpace
from repro.sim.machine import Machine, MachineConfig
from repro.tiers.spec import TierSpec

NPAGES = 200

#: A cleaner that never demotes ahead of pressure.
NO_CLEAN = CleanerPolicy(target_clean_fraction=0.0)


def build_machine():
    config = MachineConfig(
        memory_bytes=mbytes(0.5),
        tiers=(
            TierSpec(name="l1", compressor="lzrw1", max_frames=6,
                     cleaner=NO_CLEAN),
            TierSpec(name="l2", compressor="lzss", cleaner=NO_CLEAN),
        ),
    )
    space = AddressSpace()
    segment = space.add_segment("heap", NPAGES)
    machine = Machine(config, space)
    return machine, segment


def instrument(machine):
    """Record L1's reclaimable frames at shrink entry; collect the value
    seen by every demotion out of L1."""
    l1 = machine.chain.warmest
    cache = l1.cache
    sink = l1.sink
    state = {"at_shrink": None}
    observed = []

    orig_shrink = cache.shrink_one

    def recording_shrink():
        state["at_shrink"] = cache.reclaimable_frames()
        return orig_shrink()

    cache.shrink_one = recording_shrink

    orig_put = sink.put

    def recording_put(page_id, payload):
        observed.append(state["at_shrink"])
        return orig_put(page_id, payload)

    sink.put = recording_put
    return observed


def run_touches(machine, segment, pages):
    for number in pages:
        machine.vm.touch(PageId(segment.segment_id, number), write=True)


@settings(max_examples=20, deadline=None)
@given(
    pages=st.lists(
        st.integers(min_value=0, max_value=NPAGES - 1),
        min_size=30,
        max_size=250,
    )
)
def test_demotion_only_without_reclaimable_warm_space(pages):
    machine, segment = build_machine()
    observed = instrument(machine)
    run_touches(machine, segment, pages)
    assert all(value == 0 for value in observed), (
        f"pages demoted to the colder tier while the warm tier had "
        f"reclaimable frames: {[v for v in observed if v != 0]}"
    )


def test_sequential_sweep_demotes_and_respects_invariant():
    """Deterministic companion: a sweep over the whole segment is
    guaranteed to overflow the 6-frame L1 and drive real demotions."""
    machine, segment = build_machine()
    observed = instrument(machine)
    run_touches(machine, segment, list(range(NPAGES)) * 2)
    assert observed, "expected the sweep to force demotions out of L1"
    assert all(value == 0 for value in observed)
    sink = machine.chain.warmest.sink
    assert sink.demoted_pages + sink.spilled_pages == len(observed)
