"""Property: demotion only happens under genuine warm-tier pressure.

A page must never move to a colder tier while the warmer tier still has
reclaimable (clean, already-backed) space — demotion pays a decompress +
recompress, so spending it while a free-to-drop frame exists would be
pure waste.  The shrink path encodes this by preferring all-clean victim
frames; the property pins it from the outside: every
:class:`~repro.tiers.compressed.DemotionSink` write must be observed
with zero reclaimable frames at the moment its source tier's shrink
began.

Cleaners are disabled throughout: the cleaner *deliberately* writes
dirty pages ahead of pressure (that is its job, and the copies stay in
the warm tier), so the invariant is about the shrink path only.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccache.cleaner import CleanerPolicy
from repro.mem.page import PageId, mbytes
from repro.mem.segment import AddressSpace
from repro.sim.machine import Machine, MachineConfig
from repro.tiers.spec import TierSpec

NPAGES = 200

#: A cleaner that never demotes ahead of pressure.
NO_CLEAN = CleanerPolicy(target_clean_fraction=0.0)


def build_machine():
    config = MachineConfig(
        memory_bytes=mbytes(0.5),
        tiers=(
            TierSpec(name="l1", compressor="lzrw1", max_frames=6,
                     cleaner=NO_CLEAN),
            TierSpec(name="l2", compressor="lzss", cleaner=NO_CLEAN),
        ),
    )
    space = AddressSpace()
    segment = space.add_segment("heap", NPAGES)
    machine = Machine(config, space)
    return machine, segment


def instrument(machine):
    """Record L1's reclaimable frames at shrink entry; collect the value
    seen by every demotion out of L1."""
    l1 = machine.chain.warmest
    cache = l1.cache
    sink = l1.sink
    state = {"at_shrink": None}
    observed = []

    orig_shrink = cache.shrink_one

    def recording_shrink():
        state["at_shrink"] = cache.reclaimable_frames()
        return orig_shrink()

    cache.shrink_one = recording_shrink

    orig_put = sink.put

    def recording_put(page_id, payload):
        observed.append(state["at_shrink"])
        return orig_put(page_id, payload)

    sink.put = recording_put
    return observed


def run_touches(machine, segment, pages):
    for number in pages:
        machine.vm.touch(PageId(segment.segment_id, number), write=True)


@settings(max_examples=20, deadline=None)
@given(
    pages=st.lists(
        st.integers(min_value=0, max_value=NPAGES - 1),
        min_size=30,
        max_size=250,
    )
)
def test_demotion_only_without_reclaimable_warm_space(pages):
    machine, segment = build_machine()
    observed = instrument(machine)
    run_touches(machine, segment, pages)
    assert all(value == 0 for value in observed), (
        f"pages demoted to the colder tier while the warm tier had "
        f"reclaimable frames: {[v for v in observed if v != 0]}"
    )


def test_batched_demotion_is_bit_identical_to_single_page_puts():
    """The cleaner's prepare_group batch path changes no simulation bit.

    Two identical machines run the same sweep; one then demotes through
    the batched path (group pre-decompression), the other with batching
    disabled (every put decompresses on its own, the pre-batch
    behaviour).  Cleaned counts, ledger totals, and the colder tier's
    payloads must be identical — batching is wall-clock only.
    """
    machine_a, seg_a = build_machine()
    machine_b, seg_b = build_machine()
    run_touches(machine_a, seg_a, list(range(NPAGES)))
    run_touches(machine_b, seg_b, list(range(NPAGES)))

    sink_a = machine_a.chain.warmest.sink
    prepared_hits = []
    orig_put = sink_a.put

    def spying_put(page_id, payload):
        hit = sink_a._prepared.get(page_id)
        prepared_hits.append(hit is not None and hit[0] is payload)
        return orig_put(page_id, payload)

    sink_a.put = spying_put
    machine_b.chain.warmest.sink.prepare_group = lambda items: None

    cleaned_a = machine_a.chain.warmest.demote(8)
    cleaned_b = machine_b.chain.warmest.demote(8)
    assert cleaned_a == cleaned_b
    assert prepared_hits and any(prepared_hits), (
        "the batch path never consumed a prepared decompression"
    )
    assert machine_a.ledger.breakdown() == machine_b.ledger.breakdown()
    l2_a = machine_a.chain.tiers[1].cache
    l2_b = machine_b.chain.tiers[1].cache
    entries_a = {h.page_id: h.compressed_size for h in l2_a.iter_entries()}
    entries_b = {h.page_id: h.compressed_size for h in l2_b.iter_entries()}
    assert entries_a == entries_b


def test_put_many_equals_sequential_puts():
    """DemotionSink.put_many == N put() calls, observably."""
    machine_a, seg_a = build_machine()
    machine_b, seg_b = build_machine()
    run_touches(machine_a, seg_a, list(range(NPAGES)))
    run_touches(machine_b, seg_b, list(range(NPAGES)))

    def dirty_items(machine, count):
        cache = machine.chain.warmest.cache
        items = []
        for header in cache.iter_entries():
            if header.dirty:
                payload, _ = cache.fetch(header.page_id, remove=False)
                items.append((header.page_id, payload))
            if len(items) == count:
                break
        return items

    items_a = dirty_items(machine_a, 4)
    items_b = dirty_items(machine_b, 4)
    assert items_a == items_b and items_a
    total_a = machine_a.chain.warmest.sink.put_many(items_a)
    total_b = sum(
        machine_b.chain.warmest.sink.put(pid, payload)
        for pid, payload in items_b
    )
    assert total_a == total_b
    assert machine_a.ledger.breakdown() == machine_b.ledger.breakdown()


def test_sequential_sweep_demotes_and_respects_invariant():
    """Deterministic companion: a sweep over the whole segment is
    guaranteed to overflow the 6-frame L1 and drive real demotions."""
    machine, segment = build_machine()
    observed = instrument(machine)
    run_touches(machine, segment, list(range(NPAGES)) * 2)
    assert observed, "expected the sweep to force demotions out of L1"
    assert all(value == 0 for value in observed)
    sink = machine.chain.warmest.sink
    assert sink.demoted_pages + sink.spilled_pages == len(observed)
