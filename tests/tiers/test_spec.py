"""TierSpec validation and the command-line chain grammar."""

import pytest

from repro.ccache.cleaner import CleanerPolicy
from repro.tiers.spec import (
    TierSpec,
    parse_tier_specs,
    two_tier_specs,
    validate_tier_specs,
)


class TestTierSpecValidation:
    def test_defaults_are_valid(self):
        spec = TierSpec(name="cc")
        assert spec.compressor == "lzrw1"
        assert spec.max_frames is None
        assert spec.compress_scale == 1.0

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            TierSpec(name="")
        with pytest.raises(ValueError, match="name"):
            TierSpec(name="l1,l2")

    def test_dashes_and_underscores_allowed(self):
        assert TierSpec(name="fast-l1").name == "fast-l1"
        assert TierSpec(name="tier_2").name == "tier_2"

    def test_unknown_compressor_rejected(self):
        with pytest.raises(ValueError, match="compressor"):
            TierSpec(name="l1", compressor="gzip")

    def test_bad_max_frames_rejected(self):
        with pytest.raises(ValueError, match="max_frames"):
            TierSpec(name="l1", max_frames=0)
        with pytest.raises(ValueError, match="max_frames"):
            TierSpec(name="l1", max_frames=-3)

    def test_bad_age_terms_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            TierSpec(name="l1", weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            TierSpec(name="l1", weight=float("nan"))
        with pytest.raises(ValueError, match="bias_s"):
            TierSpec(name="l1", bias_s=-1.0)
        with pytest.raises(ValueError, match="bias_s"):
            TierSpec(name="l1", bias_s=float("inf"))

    def test_bad_compress_scale_rejected(self):
        with pytest.raises(ValueError, match="compress_scale"):
            TierSpec(name="l1", compress_scale=0.0)
        with pytest.raises(ValueError, match="compress_scale"):
            TierSpec(name="l1", compress_scale=float("nan"))

    def test_custom_cleaner_carried(self):
        cleaner = CleanerPolicy(target_clean_fraction=0.5)
        assert TierSpec(name="l1", cleaner=cleaner).cleaner is cleaner


class TestChainValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_tier_specs(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            validate_tier_specs(
                (TierSpec(name="cc"), TierSpec(name="cc"))
            )


class TestParseGrammar:
    def test_single_item(self):
        (spec,) = parse_tier_specs("lzrw1")
        assert spec.name == "l1"
        assert spec.compressor == "lzrw1"
        assert spec.max_frames is None

    def test_full_two_tier_item_form(self):
        l1, l2 = parse_tier_specs("lzrw1:48,lzss:0:2")
        assert (l1.name, l1.compressor, l1.max_frames) == ("l1", "lzrw1", 48)
        assert (l2.name, l2.compressor, l2.max_frames) == ("l2", "lzss", None)
        assert l2.compress_scale == 2.0

    def test_zero_frames_means_uncapped(self):
        (spec,) = parse_tier_specs("lzss:0")
        assert spec.max_frames is None

    def test_preset(self):
        assert parse_tier_specs("two-tier") == two_tier_specs()
        l1, l2 = parse_tier_specs("two-tier")
        assert l1.compressor == "lzrw1" and l1.max_frames == 48
        assert l2.compressor == "lzss" and l2.compress_scale == 2.0

    def test_whitespace_tolerated(self):
        l1, l2 = parse_tier_specs(" lzrw1:48 , lzss ")
        assert l1.max_frames == 48 and l2.compressor == "lzss"

    def test_bad_items_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_tier_specs("")
        with pytest.raises(ValueError, match="bad tier item"):
            parse_tier_specs("lzrw1:1:2:3")
        with pytest.raises(ValueError, match="bad tier item"):
            parse_tier_specs(",lzss")
        with pytest.raises(ValueError, match="max_frames"):
            parse_tier_specs("lzrw1:many")
        with pytest.raises(ValueError, match="max_frames"):
            parse_tier_specs("lzrw1:-1")
        with pytest.raises(ValueError, match="compress_scale"):
            parse_tier_specs("lzrw1:0:fast")
        with pytest.raises(ValueError, match="compressor"):
            parse_tier_specs("lzrw1,gzip")
