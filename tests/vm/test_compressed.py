"""CompressedVM: the compression-cache paging path."""


from repro.mem.page import PageState
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine
from repro.workloads import SyntheticWorkload, Thrasher

from ..conftest import tiny_machine


def make_cc_machine(workload, memory_mb=1.0, **overrides):
    return Machine(
        tiny_machine(compression_cache=True, memory_mb=memory_mb,
                     **overrides),
        workload.build(),
    )


class TestFaultPath:
    def test_faults_served_from_cache_not_disk(self):
        """Working set fits compressed: no backing-store traffic at all."""
        workload = Thrasher(400 * 4096, cycles=3, write=True)
        machine = make_cc_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        faults = result.metrics_snapshot["faults"]
        assert faults["from_ccache"] > 0
        assert faults["from_fragstore"] == 0
        assert faults["from_swap"] == 0

    def test_overflow_goes_to_fragstore(self):
        """Working set too big even compressed: compressed swap I/O."""
        workload = Thrasher(2000 * 4096, cycles=3, write=True)
        machine = make_cc_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        faults = result.metrics_snapshot["faults"]
        assert faults["from_fragstore"] > 0
        assert machine.fragstore.counters.pages_got > 0

    def test_uncompressible_pages_use_raw_swap(self):
        workload = SyntheticWorkload(
            4096 * 800, references=4000, compressible_fraction=0.0,
            hot_probability=0.2, write_fraction=0.5, seed=3,
        )
        machine = make_cc_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        evictions = result.metrics_snapshot["evictions"]
        assert evictions["uncompressible"] > 0
        assert evictions["raw_writes"] > 0
        assert machine.swap.counters.pages_out > 0

    def test_round_trips_verified_paranoid(self):
        workload = Thrasher(600 * 4096, cycles=2, write=True)
        machine = make_cc_machine(workload, memory_mb=1.0, paranoid=True)
        SimulationEngine(machine).run(workload.references())
        # paranoid mode decompresses and verifies on every fault


class TestEvictionPath:
    def test_compression_time_charged_even_when_wasted(self):
        """Table 1: 'the time to compress these pages was wasted effort'."""
        from repro.sim.ledger import TimeCategory

        workload = SyntheticWorkload(
            4096 * 600, references=3000, compressible_fraction=0.0,
            hot_probability=0.2, write_fraction=0.5, seed=5,
        )
        machine = make_cc_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["evictions"]["compressed_kept"] == 0
        assert machine.ledger.total(TimeCategory.COMPRESS) > 0.0

    def test_fast_drop_for_unmodified_cached_page(self):
        workload = Thrasher(500 * 4096, cycles=3, write=False)
        machine = make_cc_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["evictions"]["ccache_fast_drops"] > 0

    def test_threshold_accounting_matches_table1_columns(self):
        workload = SyntheticWorkload(
            4096 * 600, references=3000, compressible_fraction=0.5,
            hot_probability=0.2, write_fraction=0.5, seed=7,
        )
        machine = make_cc_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        # About half the evicted pages compress: both columns populated.
        assert 20.0 < result.uncompressible_percent < 80.0
        assert result.compression_ratio_percent < 40.0


class TestAdaptiveGate:
    def test_gate_disables_compression_for_random_data(self):
        workload = SyntheticWorkload(
            4096 * 800, references=5000, compressible_fraction=0.0,
            hot_probability=0.2, write_fraction=0.5, seed=9,
        )
        machine = make_cc_machine(workload, memory_mb=1.0,
                                  adaptive_gate=True)
        result = SimulationEngine(machine).run(workload.references())
        assert machine.gate.times_closed >= 1
        assert result.metrics_snapshot["evictions"]["bypassed_gate"] > 0

    def test_gated_run_spends_less_compression_time(self):
        from repro.sim.ledger import TimeCategory

        def run(adaptive):
            workload = SyntheticWorkload(
                4096 * 800, references=5000, compressible_fraction=0.0,
                hot_probability=0.2, write_fraction=0.5, seed=9,
            )
            machine = make_cc_machine(workload, memory_mb=1.0,
                                      adaptive_gate=adaptive)
            SimulationEngine(machine).run(workload.references())
            return machine.ledger.total(TimeCategory.COMPRESS)

        assert run(True) < run(False)

    def test_gate_stays_open_for_compressible_data(self):
        workload = Thrasher(500 * 4096, cycles=2, write=True)
        machine = make_cc_machine(workload, memory_mb=1.0,
                                  adaptive_gate=True)
        SimulationEngine(machine).run(workload.references())
        assert machine.gate.times_closed == 0


class TestPrefetch:
    def test_colocated_prefetch_reduces_reads(self):
        def run(prefetch):
            workload = Thrasher(2500 * 4096, cycles=3, write=False, seed=2)
            machine = make_cc_machine(
                workload, memory_mb=1.0, prefetch_colocated=prefetch
            )
            result = SimulationEngine(machine).run(workload.references())
            return machine.device.counters.reads, result

        reads_with, result_with = run(True)
        reads_without, _ = run(False)
        assert reads_with < reads_without
        assert result_with.metrics_snapshot["prefetched_pages"] > 0


class TestStateConsistency:
    def test_states_resolve_after_drain(self):
        workload = Thrasher(600 * 4096, cycles=2, write=True)
        machine = make_cc_machine(workload, memory_mb=1.0)
        engine = SimulationEngine(machine)
        engine.run(workload.references(), drain=True)
        seg = next(machine.address_space.segments())
        for pte in seg.touched_entries():
            assert pte.state in (PageState.COMPRESSED,
                                 PageState.BACKING_STORE)
            if pte.state == PageState.COMPRESSED:
                assert pte.page_id in machine.ccache
        # Every dirty compressed page reached the backing store.
        assert machine.ccache.dirty_pages() == 0

    def test_frame_accounting_reconciles(self):
        workload = Thrasher(700 * 4096, cycles=2, write=True)
        machine = make_cc_machine(workload, memory_mb=1.0)
        SimulationEngine(machine).run(workload.references())
        frames = machine.frames
        from repro.mem.frames import FrameOwner

        assert frames.owned_by(FrameOwner.VM) == machine.vm.resident_pages
        assert (
            frames.owned_by(FrameOwner.COMPRESSION) == machine.ccache.nframes
        )
        total = (
            frames.owned_by(FrameOwner.VM)
            + frames.owned_by(FrameOwner.COMPRESSION)
            + frames.owned_by(FrameOwner.FILE_CACHE)
            + frames.free_frames
        )
        assert total == frames.total_frames

    def test_cleaner_runs_under_pressure(self):
        workload = Thrasher(2000 * 4096, cycles=2, write=True)
        machine = make_cc_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["cleaner_invocations"] > 0
        assert machine.ccache.counters.cleaned_pages > 0
