"""The Mach-style external-pager architecture."""

import pytest

from repro.mem.page import PageId, mbytes
from repro.pager.interface import PagerError
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.vm.faults import VmConfigurationError
from repro.workloads import SyntheticWorkload, Thrasher


def make_machine(compression_cache, memory_mb=0.5, space_mb=1.2,
                 paranoid=False, cycles=3):
    workload = Thrasher(mbytes(space_mb), cycles=cycles, write=True)
    machine = Machine(
        MachineConfig(
            memory_bytes=mbytes(memory_mb),
            compression_cache=compression_cache,
            vm_architecture="external-pager",
            paranoid=paranoid,
        ),
        workload.build(),
    )
    return workload, machine


class TestDefaultPager:
    def test_round_trips_pages(self):
        workload, machine = make_machine(False, paranoid=True)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["faults"]["total"] > 0
        assert machine.pager is not None
        # paranoid mode verified every pagein against the true contents

    def test_pagein_unknown_page_raises(self):
        _, machine = make_machine(False)
        with pytest.raises(PagerError):
            machine.pager.pagein(PageId(0, 999))

    def test_clean_pageouts_free(self):
        workload, machine = make_machine(False, space_mb=1.0, cycles=4)
        result = SimulationEngine(machine).run(workload.references())
        # Read-write thrasher: every eviction dirty, so writes dominate;
        # with a read-only workload clean drops appear.
        ro = Thrasher(mbytes(1.0), cycles=4, write=False)
        machine_ro = Machine(
            MachineConfig(memory_bytes=mbytes(0.5),
                          compression_cache=False,
                          vm_architecture="external-pager"),
            ro.build(),
        )
        result_ro = SimulationEngine(machine_ro).run(ro.references())
        assert result_ro.metrics_snapshot["evictions"]["clean_drops"] > 0


class TestCompressionPager:
    def test_round_trips_pages(self):
        workload, machine = make_machine(True, paranoid=True)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["faults"]["total"] > 0
        assert machine.pager.stats.pages_compressed > 0

    def test_cache_absorbs_io(self):
        workload, machine = make_machine(True, space_mb=1.0)
        SimulationEngine(machine).run(workload.references())
        # The compressed working set fits: the disk stays nearly idle
        # after the first-cycle write-out is batched by the cleaner.
        assert machine.ccache.compressed_pages > 0

    def test_uncompressible_pages_fall_through_to_swap(self):
        workload = SyntheticWorkload(
            mbytes(1.2), references=4000, compressible_fraction=0.0,
            hot_probability=0.3, write_fraction=0.5, seed=8,
        )
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5),
                          compression_cache=True,
                          vm_architecture="external-pager"),
            workload.build(),
        )
        SimulationEngine(machine).run(workload.references())
        assert machine.swap.counters.pages_out > 0
        assert machine.pager.stats.pages_uncompressible > 0

    def test_drain_flushes_pager(self):
        workload, machine = make_machine(True)
        engine = SimulationEngine(machine)
        engine.run(workload.references(), drain=True)
        assert machine.ccache.dirty_pages() == 0


class TestIpcTax:
    def test_crossings_charged(self):
        workload, machine = make_machine(True)
        result = SimulationEngine(machine).run(workload.references())
        assert machine.vm.pager_crossings > 0
        # Every crossing charged at least the IPC round trip.
        assert result.time_breakdown["fault-trap"] >= (
            machine.vm.pager_crossings
            * machine.config.costs.ipc_roundtrip_s
        )

    def test_ipc_tax_on_identical_policy(self):
        """Plain swap behind the pager interface versus in-kernel plain
        swap: byte-identical policy, so the external version is slower
        by exactly the per-crossing overhead."""
        def run(architecture):
            workload = Thrasher(mbytes(1.2), cycles=3, write=True)
            machine = Machine(
                MachineConfig(memory_bytes=mbytes(0.5),
                              compression_cache=False,
                              vm_architecture=architecture),
                workload.build(),
            )
            result = SimulationEngine(machine).run(workload.references())
            return result, machine

        in_kernel, _ = run("monolithic")
        external, machine = run("external-pager")
        assert external.elapsed_seconds > in_kernel.elapsed_seconds
        tax = (
            machine.vm.pager_crossings
            * (machine.config.costs.ipc_roundtrip_s
               + machine.config.costs.copy_seconds(4096))
        )
        assert external.elapsed_seconds == pytest.approx(
            in_kernel.elapsed_seconds + tax, rel=0.02
        )

    def test_external_cache_still_beats_external_swap(self):
        """The architecture tax doesn't erase the compression win."""
        def run(compression_cache):
            workload, machine = make_machine(compression_cache)
            return SimulationEngine(machine).run(
                workload.references()
            ).elapsed_seconds

        assert run(True) < run(False)


class TestConfiguration:
    def test_unknown_architecture_rejected(self):
        workload = Thrasher(mbytes(0.5))
        with pytest.raises(VmConfigurationError):
            Machine(
                MachineConfig(memory_bytes=mbytes(0.5),
                              vm_architecture="exokernel"),
                workload.build(),
            )

    def test_monolithic_has_no_pager(self):
        workload = Thrasher(mbytes(0.5))
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5)), workload.build()
        )
        assert machine.pager is None


class TestPagerFaultContext:
    def test_missing_fragment_surfaces_with_gc_context(self):
        """A vanished fragment becomes a PagerError naming the page and
        the store's GC generation (satellite of the typed-error work)."""
        _, machine = make_machine(True)
        pager = machine.pager
        page = PageId(0, 7)
        # Claim the store holds the page while it actually does not, the
        # shape of a fragment reclaimed between holds() and pagein().
        pager.fragstore.contains = lambda _pid: True
        with pytest.raises(PagerError, match=r"fragment missing"):
            pager.pagein(page)

    def test_chaos_run_external_pager(self):
        """The external-pager architecture survives a fault plan too."""
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.from_dict({
            "seed": 5,
            "device": {"read_error_rate": 0.02, "write_error_rate": 0.02,
                       "latency_spike_rate": 0.02,
                       "latency_spike_ms": 10.0},
            "fragments": {"corrupt_read_rate": 0.03},
        })
        workload = Thrasher(mbytes(1.2), cycles=3, write=True)
        machine = Machine(
            MachineConfig(
                memory_bytes=mbytes(0.5),
                vm_architecture="external-pager",
                fault_plan=plan,
                paranoid=True,
            ),
            workload.build(),
        )
        result = SimulationEngine(machine).run(workload.references())
        assert result.fault_counters is not None
        assert result.fault_counters["injected_faults"] > 0
