"""Failure injection: the paranoid mode must catch a lying substrate.

The simulator carries real data end-to-end precisely so that corruption
anywhere in the pipeline is detectable.  These tests break components on
purpose and check the paranoid verification path fires.
"""

import pytest

from repro.compression import CompressionResult, Compressor
from repro.compression.sampler import CompressionSampler
from repro.mem.page import PageId, mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.workloads import Thrasher


class BitFlippingCompressor(Compressor):
    """Compresses correctly but decompresses with one flipped bit."""

    name = "bitflip"

    def __init__(self):
        self._inner = None

    @property
    def inner(self):
        if self._inner is None:
            from repro.compression import create

            self._inner = create("lzrw1")
        return self._inner

    def compress(self, data: bytes) -> CompressionResult:
        return self.inner.compress(data)

    def decompress(self, result: CompressionResult) -> bytes:
        data = bytearray(self.inner.decompress(result))
        if data:
            data[0] ^= 0x01
        return bytes(data)


class TestParanoidCatchesCorruption:
    def test_corrupting_compressor_detected(self, monkeypatch):
        workload = Thrasher(mbytes(1), cycles=2, write=True)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5), paranoid=True),
            workload.build(),
        )
        # Swap the decompression path for the lying one.
        machine.vm.sampler = CompressionSampler(
            BitFlippingCompressor(), exact=True, keep_payloads=True
        )
        machine.sampler = machine.vm.sampler
        with pytest.raises(AssertionError, match="mismatch"):
            SimulationEngine(machine).run(workload.references())

    def test_corrupted_swap_detected(self):
        workload = Thrasher(mbytes(1), cycles=3, write=False)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5),
                          compression_cache=False, paranoid=True),
            workload.build(),
        )
        engine = SimulationEngine(machine)
        # Run one cycle so pages land on swap, then corrupt a block.
        engine.run(workload.references(), max_references=300)
        swap_file = machine.swap._file(0)
        victim = next(iter(swap_file.blocks))
        swap_file.blocks[victim][0] ^= 0xFF
        pte = machine.address_space.entry(PageId(0, victim))
        if (
            machine.swap.contains(pte.page_id)
            and pte.saved_version == pte.content.version
            and not machine.vm.is_resident(pte.page_id)
        ):
            with pytest.raises(AssertionError, match="stale"):
                machine.vm.touch(pte.page_id)

    def test_clean_system_passes_paranoid(self):
        """Control: nothing raises when nothing is broken."""
        workload = Thrasher(mbytes(1), cycles=2, write=True)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5), paranoid=True),
            workload.build(),
        )
        SimulationEngine(machine).run(workload.references())


class TestFrameLeakDetection:
    def test_no_frames_leak_across_a_long_run(self):
        from repro.mem.frames import FrameOwner

        workload = Thrasher(mbytes(1.5), cycles=4, write=True)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5)), workload.build()
        )
        SimulationEngine(machine).run(workload.references(), drain=True)
        frames = machine.frames
        assert frames.owned_by(FrameOwner.VM) == machine.vm.resident_pages
        assert frames.owned_by(FrameOwner.COMPRESSION) == (
            machine.ccache.nframes
        )
        total = sum(
            frames.owned_by(owner) for owner in FrameOwner
        ) + frames.free_frames
        assert total == frames.total_frames
