"""StandardVM: demand paging without compression."""


from repro.mem.page import PageId, PageState
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine
from repro.workloads import SyntheticWorkload, Thrasher

from ..conftest import tiny_machine


def make_std_machine(workload, memory_mb=1.0):
    return Machine(
        tiny_machine(compression_cache=False, memory_mb=memory_mb),
        workload.build(),
    )


class TestResidency:
    def test_fit_in_memory_no_io(self):
        workload = Thrasher(64 * 4096, cycles=3, write=True)
        machine = make_std_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["faults"]["total"] == 64
        assert machine.device.counters.reads == 0
        assert machine.device.counters.writes == 0

    def test_first_touch_is_zero_fill(self):
        workload = Thrasher(16 * 4096, cycles=1, write=False)
        machine = make_std_machine(workload)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["faults"]["zero_fill"] == 16
        assert result.metrics_snapshot["faults"]["from_swap"] == 0

    def test_thrash_faults_every_access(self):
        pages = 512  # 2 MBytes > 1 MByte of memory
        workload = Thrasher(pages * 4096, cycles=2, write=True)
        machine = make_std_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["faults"]["total"] == 2 * pages

    def test_lru_replacement_order(self):
        machine = make_std_machine(
            SyntheticWorkload(4096 * 4, references=1), memory_mb=1.0
        )
        vm = machine.vm
        space = machine.address_space
        seg = next(space.segments())
        for n in range(3):
            vm.touch(PageId(seg.segment_id, n))
        vm.touch(PageId(seg.segment_id, 0))  # make page 0 hot
        # Evict one: page 1 (the coldest) must go.
        vm.shrink_one()
        assert vm.is_resident(PageId(seg.segment_id, 0))
        assert not vm.is_resident(PageId(seg.segment_id, 1))


class TestSwapTraffic:
    def test_dirty_eviction_writes_clean_eviction_does_not(self):
        pages = 400
        workload = Thrasher(pages * 4096, cycles=3, write=False)
        machine = make_std_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        evictions = result.metrics_snapshot["evictions"]
        # First eviction of each page writes (no backing copy yet);
        # later evictions are clean drops (read-only workload).
        assert evictions["raw_writes"] == pages
        assert evictions["clean_drops"] > 0

    def test_rw_thrash_writes_every_eviction(self):
        pages = 400
        workload = Thrasher(pages * 4096, cycles=2, write=True)
        machine = make_std_machine(workload, memory_mb=1.0)
        result = SimulationEngine(machine).run(workload.references())
        evictions = result.metrics_snapshot["evictions"]
        assert evictions["clean_drops"] == 0
        assert evictions["raw_writes"] == evictions["total"]

    def test_swap_round_trip_preserves_content(self):
        workload = Thrasher(400 * 4096, cycles=2, write=True)
        machine = Machine(
            tiny_machine(compression_cache=False, memory_mb=1.0,
                         paranoid=True),
            workload.build(),
        )
        SimulationEngine(machine).run(workload.references())
        # paranoid mode asserts on stale swap data internally

    def test_state_transitions(self):
        workload = SyntheticWorkload(4096 * 300, references=1)
        machine = make_std_machine(workload, memory_mb=1.0)
        vm = machine.vm
        seg = next(machine.address_space.segments())
        page = PageId(seg.segment_id, 0)
        pte = machine.address_space.entry(page)
        assert pte.state == PageState.UNTOUCHED
        vm.touch(page, write=True)
        assert pte.state == PageState.RESIDENT
        vm.drain()
        assert pte.state == PageState.BACKING_STORE


class TestInvariants:
    def test_check_invariants_clean_run(self):
        workload = Thrasher(300 * 4096, cycles=2)
        machine = make_std_machine(workload)
        engine = SimulationEngine(machine)
        engine.run(workload.references())
        machine.vm.check_invariants()

    def test_min_resident_respected(self):
        workload = SyntheticWorkload(4096 * 64, references=200)
        machine = make_std_machine(workload)
        SimulationEngine(machine).run(workload.references())
        vm = machine.vm
        while vm.shrink_one() is not None:
            pass
        assert vm.resident_pages == vm.min_resident_frames
