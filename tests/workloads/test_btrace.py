"""Binary trace format: round-trips, malformed files, backend equality.

The format promise is threefold: (1) fixed little-endian records decode
to the same values on any host, (2) the mmap, in-memory, and
struct-fallback read paths are value-identical, and (3) replaying a
binary trace through the engine's batch dispatch is observably identical
to replaying the same references one PageRef at a time.
"""

import hashlib
import io
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.page import PageId, mbytes
from repro.sim.engine import PageRef, SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.sim.trace import Trace, TraceFormatError
from repro.workloads import Thrasher, btrace


def make_refs():
    return [
        PageRef(PageId(0, 0), write=False),
        PageRef(PageId(0, 7), write=True),
        PageRef(PageId(3, 4096), write=True),
        PageRef(PageId(65535, 0xFFFFFFFF), write=False,
                compute_seconds=0.000123),
        PageRef(PageId(0, 7), write=False, compute_seconds=1.5),
    ]


def dump_bytes(refs):
    buf = io.BytesIO()
    btrace.dump(buf, refs)
    return buf.getvalue()


class TestRoundTrip:
    def test_refs_survive_a_round_trip(self, tmp_path):
        refs = make_refs()
        path = tmp_path / "t.btrace"
        assert btrace.dump(path, refs) == len(refs)
        with btrace.BinaryTraceReader(path) as reader:
            assert len(reader) == len(refs)
            back = list(reader)
        assert [r.page_id for r in back] == [r.page_id for r in refs]
        assert [r.write for r in back] == [r.write for r in refs]
        # compute time quantizes to whole microseconds
        assert [r.compute_seconds for r in back] == [
            round(r.compute_seconds * 1e6) / 1e6 for r in refs
        ]
        assert all(r.mutate is None for r in back)

    def test_zero_length_trace(self, tmp_path):
        path = tmp_path / "empty.btrace"
        assert btrace.dump(path, []) == 0
        assert path.stat().st_size == btrace.HEADER.size
        with btrace.BinaryTraceReader(path) as reader:
            assert len(reader) == 0
            assert list(reader) == []
            assert list(reader.chunks()) == []

    def test_max_events_caps_recording(self):
        data = dump_bytes(make_refs() * 10)
        buf = io.BytesIO()
        assert btrace.dump(buf, make_refs() * 10, max_events=7) == 7
        assert len(btrace.BinaryTraceReader(buf.getvalue())) == 7
        assert len(btrace.BinaryTraceReader(data)) == 50

    def test_writer_backpatches_count(self, tmp_path):
        path = tmp_path / "w.btrace"
        with btrace.BinaryTraceWriter(path) as writer:
            writer.append_record(1, 2, True, kind=0xDEADBEEF, tick_us=9)
            writer.append_record(1, 3, False)
        reader = btrace.BinaryTraceReader(path)
        assert len(reader) == 2
        assert list(reader.kinds()) == [[0xDEADBEEF, 0]]


class TestEndianness:
    def test_record_bytes_are_fixed_little_endian(self):
        # Golden bytes, independent of host endianness: the format spec
        # in docs/traces.md, byte for byte.
        rec = btrace.pack_record(
            0x0102, 0x03040506, True, kind=0x0A0B0C0D, tick_us=0x11121314
        )
        assert rec == bytes(
            [0x01, 0x00,              # op = write, pad
             0x02, 0x01,              # segment 0x0102 LE
             0x06, 0x05, 0x04, 0x03,  # number 0x03040506 LE
             0x0D, 0x0C, 0x0B, 0x0A,  # kind LE
             0x14, 0x13, 0x12, 0x11]  # tick LE
        )

    def test_header_bytes(self):
        data = dump_bytes([])
        assert data[:4] == b"RBT1"
        assert data[4] == btrace.VERSION
        assert data[5] == btrace.RECORD_SIZE
        assert data[8:16] == (0).to_bytes(8, "little")

    def test_values_round_trip_through_fixed_layout(self):
        refs = make_refs()
        reader = btrace.BinaryTraceReader(dump_bytes(refs))
        (writes, segments, numbers, ticks), = list(reader.chunks())
        assert writes == [0, 1, 1, 0, 0]
        assert segments == [0, 0, 3, 65535, 0]
        assert numbers == [0, 7, 4096, 0xFFFFFFFF, 7]
        assert ticks == [0, 0, 0, 123, 1500000]


class TestAnalyzeCli:
    def test_empty_binary_trace_reports_and_exits_zero(self, tmp_path,
                                                       capsys):
        """trace-analyze on a zero-record trace is not an error: it
        says so explicitly and exits 0 (regression: the histogram code
        used to be reached with no references)."""
        from repro.cli import main

        path = tmp_path / "empty.btrace"
        with btrace.BinaryTraceWriter(path):
            pass  # header only, zero records
        assert main(["trace-analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "empty trace" in out
        assert "0 references" in out

    def test_empty_text_trace_reports_and_exits_zero(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        path = tmp_path / "empty.trace"
        Trace([]).dump(path)
        assert main(["trace-analyze", str(path)]) == 0
        assert "empty trace" in capsys.readouterr().out


class TestMalformed:
    def test_truncated_records_rejected(self, tmp_path):
        path = tmp_path / "trunc.btrace"
        btrace.dump(path, make_refs())
        whole = path.read_bytes()
        for cut in (1, btrace.RECORD_SIZE - 1, btrace.RECORD_SIZE + 3):
            path.write_bytes(whole[:-cut])
            with pytest.raises(TraceFormatError, match="truncated"):
                btrace.BinaryTraceReader(path)

    def test_shorter_than_header_rejected(self, tmp_path):
        path = tmp_path / "stub.btrace"
        for size in (0, 1, btrace.HEADER.size - 1):
            path.write_bytes(b"RBT1"[:size].ljust(size, b"\x00"))
            with pytest.raises(TraceFormatError, match="header"):
                btrace.BinaryTraceReader(path)

    def test_bad_magic_rejected(self):
        data = bytearray(dump_bytes([]))
        data[:4] = b"NOPE"
        with pytest.raises(TraceFormatError, match="magic"):
            btrace.BinaryTraceReader(bytes(data))

    def test_unknown_version_rejected(self):
        data = bytearray(dump_bytes([]))
        data[4] = 99
        with pytest.raises(TraceFormatError, match="version"):
            btrace.BinaryTraceReader(bytes(data))

    def test_foreign_record_size_rejected(self):
        data = bytearray(dump_bytes([]))
        data[5] = 24
        with pytest.raises(TraceFormatError, match="record size"):
            btrace.BinaryTraceReader(bytes(data))

    def test_overdeclared_count_rejected(self):
        data = bytearray(dump_bytes(make_refs()))
        struct.pack_into("<Q", data, 8, 6)  # file holds 5
        with pytest.raises(TraceFormatError, match="truncated"):
            btrace.BinaryTraceReader(bytes(data))


references_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.booleans(),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    ),
    max_size=300,
)


@settings(max_examples=25, deadline=None)
@given(rows=references_strategy, chunk_size=st.sampled_from([1, 7, 64, 1 << 16]))
def test_mmap_memory_and_fallback_backends_agree(rows, chunk_size, tmp_path_factory):
    """Property: every read path decodes identical columns."""
    path = tmp_path_factory.mktemp("bt") / "p.btrace"
    with btrace.BinaryTraceWriter(path) as writer:
        for segment, number, write, tick in rows:
            writer.append_record(segment, number, write, tick_us=tick)
    variants = []
    for use_mmap, fast in [(True, None), (False, None), (True, False),
                           (False, False)]:
        with btrace.BinaryTraceReader(
            path, use_mmap=use_mmap, fast=fast
        ) as reader:
            assert reader.mmapped == use_mmap
            variants.append(list(reader.chunks(chunk_size)))
    assert variants[0] == variants[1] == variants[2] == variants[3]
    flat = [
        (s, n, bool(w), t)
        for chunk in variants[0]
        for w, s, n, t in zip(*chunk)
    ]
    assert flat == [(s, n, w, t) for s, n, w, t in rows]


def result_digest(result):
    canonical = json.dumps(result.as_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def test_batch_replay_matches_per_reference_replay(tmp_path):
    """run_trace over the binary trace == run over the PageRef stream."""
    workload = Thrasher(mbytes(0.6), cycles=2, write=True)
    workload.build()
    trace = Trace.record(workload.references())
    path = tmp_path / "t.btrace"
    btrace.dump(path, iter(trace))

    def fresh_machine():
        w = Thrasher(mbytes(0.6), cycles=2, write=True)
        return Machine(MachineConfig(memory_bytes=mbytes(0.3)), w.build())

    baseline = SimulationEngine(fresh_machine()).run(iter(trace))
    for use_mmap in (True, False):
        with btrace.BinaryTraceReader(path, use_mmap=use_mmap) as reader:
            batched = SimulationEngine(fresh_machine()).run_trace(
                reader, chunk_size=97
            )
        assert result_digest(batched) == result_digest(baseline)


def test_batch_replay_honours_max_references(tmp_path):
    workload = Thrasher(mbytes(0.6), cycles=2, write=True)
    workload.build()
    trace = Trace.record(workload.references())
    path = tmp_path / "t.btrace"
    btrace.dump(path, iter(trace))
    cap = len(trace) // 2

    def fresh_machine():
        w = Thrasher(mbytes(0.6), cycles=2, write=True)
        return Machine(MachineConfig(memory_bytes=mbytes(0.3)), w.build())

    capped = SimulationEngine(fresh_machine()).run(
        iter(trace), max_references=cap
    )
    with btrace.BinaryTraceReader(path) as reader:
        batched = SimulationEngine(fresh_machine()).run_trace(
            reader, max_references=cap, chunk_size=13
        )
    assert result_digest(batched) == result_digest(capped)


def test_batch_replay_observer_cadence(tmp_path):
    workload = Thrasher(mbytes(0.5), cycles=1, write=True)
    workload.build()
    trace = Trace.record(workload.references())
    path = tmp_path / "t.btrace"
    btrace.dump(path, iter(trace))
    seen = []
    w = Thrasher(mbytes(0.5), cycles=1, write=True)
    machine = Machine(MachineConfig(memory_bytes=mbytes(0.3)), w.build())
    with btrace.BinaryTraceReader(path) as reader:
        SimulationEngine(machine).run_trace(
            reader, observer=lambda _m, i: seen.append(i),
            observe_every=10, chunk_size=16,
        )
    assert seen == list(range(10, len(trace) + 1, 10))
