"""The real banded DP: correctness and content fidelity."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import create
from repro.workloads.compare import CompareWorkload, banded_edit_distance


def full_edit_distance(a, b):
    """Reference Levenshtein, O(len(a) * len(b))."""
    previous = list(range(len(b) + 1))
    for i in range(1, len(a) + 1):
        row = [i]
        for j in range(1, len(b) + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            row.append(min(previous[j - 1] + cost,
                           previous[j] + 1,
                           row[-1] + 1))
        previous = row
    return previous[-1]


class TestBandedEditDistance:
    def test_identical_sequences(self):
        distance, rows = banded_edit_distance("hello", "hello", band=2)
        assert distance == 0
        assert len(rows) == 6

    def test_classic_example(self):
        distance, _ = banded_edit_distance("kitten", "sitting", band=3)
        assert distance == 3

    def test_matches_full_dp_with_wide_band(self):
        a, b = "intention", "execution"
        expected = full_edit_distance(a, b)
        distance, _ = banded_edit_distance(a, b, band=len(a) + len(b))
        assert distance == expected

    def test_band_too_narrow_for_lengths(self):
        with pytest.raises(ValueError):
            banded_edit_distance("abcdef", "a", band=2)

    def test_negative_band(self):
        with pytest.raises(ValueError):
            banded_edit_distance("a", "a", band=-1)

    def test_empty_sequences(self):
        distance, _ = banded_edit_distance("", "", band=0)
        assert distance == 0
        distance, _ = banded_edit_distance("", "ab", band=2)
        assert distance == 2

    @settings(max_examples=80, deadline=None)
    @given(
        a=st.text(alphabet="abc", min_size=0, max_size=12),
        b=st.text(alphabet="abc", min_size=0, max_size=12),
    )
    def test_wide_band_equals_full_dp(self, a, b):
        expected = full_edit_distance(a, b)
        distance, _ = banded_edit_distance(a, b, band=30)
        assert distance == expected

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.text(alphabet="ab", min_size=2, max_size=12),
        band=st.integers(1, 6),
    )
    def test_narrow_band_never_underestimates(self, a, band):
        """Restricting the stripe can only prune paths, so the banded
        distance is a lower... upper bound on nothing smaller than the
        true distance."""
        b = a[::-1]
        if abs(len(a) - len(b)) > band:
            return
        true = full_edit_distance(a, b)
        banded, _ = banded_edit_distance(a, b, band=band)
        assert banded >= true

    def test_row_windows_follow_the_diagonal(self):
        _, rows = banded_edit_distance("abcdefgh", "abcdefgh", band=2)
        assert len(rows[0]) == 3       # columns 0..2
        assert len(rows[4]) == 5       # columns 2..6
        assert rows[0][0] == 0         # the origin


class TestRealDpContent:
    def test_real_pages_compress_like_the_synthetic_ones(self):
        """The synthetic generator is calibrated against the real DP:
        both land near the paper's 3:1 for compare."""
        lzrw1 = create("lzrw1")

        real = CompareWorkload(16 * 4096, real_dp=True)
        real.build()
        segment = next(real.address_space.segments())
        real_ratios = [
            lzrw1.compress(segment.entry(n).content.materialize()).ratio
            for n in range(12)
        ]

        synthetic = CompareWorkload(16 * 4096, real_dp=False)
        synthetic.build()
        segment = next(synthetic.address_space.segments())
        synthetic_ratios = [
            lzrw1.compress(segment.entry(n).content.materialize()).ratio
            for n in range(12)
        ]
        real_mean = statistics.mean(real_ratios)
        synthetic_mean = statistics.mean(synthetic_ratios)
        assert 0.1 < real_mean < 0.5
        assert abs(real_mean - synthetic_mean) < 0.2

    def test_real_dp_workload_runs(self):
        from repro.mem.page import mbytes
        from repro.sim.engine import SimulationEngine
        from repro.sim.machine import Machine, MachineConfig

        workload = CompareWorkload(mbytes(0.25), round_trips=1,
                                   real_dp=True)
        machine = Machine(
            MachineConfig(memory_bytes=mbytes(0.5)), workload.build()
        )
        result = SimulationEngine(machine).run(workload.references())
        assert result.metrics_snapshot["accesses"] > 0
