"""Content generators: determinism and measured compressibility bands.

Table 1's compressibility columns depend on these generators producing
pages whose *real* LZRW1 ratios land where the paper's applications did;
each band below pins that calibration.
"""

import statistics

import pytest

from repro.compression import create
from repro.workloads import contentgen as cg

from ..conftest import PAGE


@pytest.fixture(scope="module")
def lzrw1():
    return create("lzrw1")


def mean_ratio(generator, lzrw1, n=30):
    return statistics.mean(
        lzrw1.compress(generator(i)).ratio for i in range(n)
    )


class TestDeterminism:
    def test_same_args_same_bytes(self):
        assert cg.repeating_pattern(3, seed=1) == cg.repeating_pattern(3, seed=1)
        assert cg.dp_band_values(5) == cg.dp_band_values(5)
        assert cg.incompressible(2) == cg.incompressible(2)
        assert cg.index_page(4) == cg.index_page(4)
        assert cg.cache_table_page(6) == cg.cache_table_page(6)

    def test_different_pages_different_bytes(self):
        assert cg.repeating_pattern(1) != cg.repeating_pattern(2)
        assert cg.incompressible(1) != cg.incompressible(2)

    def test_all_generators_fill_a_page(self):
        dictionary = cg.make_dictionary(nwords=128)
        pages = [
            cg.repeating_pattern(0),
            cg.incompressible(0),
            cg.dp_band_values(0),
            cg.text_page_random(0, dictionary),
            cg.text_page_clustered(0, dictionary),
            cg.index_page(0),
            cg.cache_table_page(0),
        ]
        assert all(len(page) == PAGE for page in pages)


class TestCompressibilityBands:
    def test_thrasher_pages_roughly_4_to_1(self, lzrw1):
        """Figure 3 caption: 'pages compress roughly 4:1'."""
        ratio = mean_ratio(lambda i: cg.repeating_pattern(i), lzrw1)
        assert 0.2 < ratio < 0.35

    def test_dp_band_roughly_3_to_1(self, lzrw1):
        """Table 1 compare: compression ratio 31%."""
        ratio = mean_ratio(cg.dp_band_values, lzrw1)
        assert 0.25 < ratio < 0.40

    def test_cache_table_roughly_3_to_1(self, lzrw1):
        """Table 1 isca: compression ratio 32%."""
        ratio = mean_ratio(cg.cache_table_page, lzrw1)
        assert 0.25 < ratio < 0.40

    def test_incompressible_never_compresses(self, lzrw1):
        for i in range(10):
            assert lzrw1.compress(cg.incompressible(i)).stored_raw

    def test_random_text_misses_threshold(self, lzrw1):
        """Table 1 sort random: ~98% of pages compress less than 4:3."""
        dictionary = cg.make_dictionary()
        over = sum(
            lzrw1.compress(cg.text_page_random(i, dictionary)).ratio > 0.75
            for i in range(30)
        )
        assert over >= 28

    def test_clustered_text_roughly_3_to_1(self, lzrw1):
        """Table 1 sort partial: kept pages compress to ~30%."""
        dictionary = cg.make_dictionary()
        ratio = mean_ratio(
            lambda i: cg.text_page_clustered(i, dictionary,
                                             cluster_words=30),
            lzrw1,
        )
        assert 0.2 < ratio < 0.4

    def test_index_pages_slightly_worse_than_2_to_1(self, lzrw1):
        """Table 1 gold: 'compresses slightly worse than 2:1' with a
        tail of pages missing the threshold."""
        ratios = [
            lzrw1.compress(cg.index_page(i)).ratio for i in range(60)
        ]
        kept = [r for r in ratios if r <= 0.75]
        assert kept, "some index pages must compress"
        assert 0.45 < statistics.mean(kept) < 0.70
        over = sum(r > 0.75 for r in ratios) / len(ratios)
        assert 0.0 < over < 0.5


class TestDictionary:
    def test_words_unique(self):
        words = cg.make_dictionary(nwords=500)
        assert len(set(words)) == 500

    def test_word_lengths(self):
        words = cg.make_dictionary(nwords=100, min_len=5, max_len=12)
        assert all(5 <= len(w) <= 12 for w in words)

    def test_repeating_pattern_validation(self):
        with pytest.raises(ValueError):
            cg.repeating_pattern(0, unique_bytes=0)
        with pytest.raises(ValueError):
            cg.repeating_pattern(0, unique_bytes=PAGE + 1)
