"""Relaunch and diurnal workloads: determinism, counts, shape, errors.

Both exist to exercise the tier controller (their working sets shift in
ways no static geometry matches), so the properties that matter are the
controller-facing ones: bit-for-bit deterministic schedules, an exact
``total_references`` budget, and phase/session structure that actually
moves the working set around.
"""

import pytest

from repro.mem.page import mbytes
from repro.workloads import AppRelaunchWorkload, DiurnalWorkload


def drain(workload):
    workload.build()
    return list(workload.references())


class TestRelaunch:
    def test_schedule_is_deterministic_per_seed(self):
        a = AppRelaunchWorkload(mbytes(0.2), seed=3)
        b = AppRelaunchWorkload(mbytes(0.2), seed=3)
        assert a._schedule == b._schedule
        refs_a = [(r.page_id, r.write) for r in drain(a)]
        refs_b = [(r.page_id, r.write) for r in drain(b)]
        assert refs_a == refs_b

    def test_different_seeds_give_different_schedules(self):
        schedules = {
            tuple(AppRelaunchWorkload(mbytes(0.2), seed=s)._schedule)
            for s in range(8)
        }
        assert len(schedules) > 1

    def test_every_session_switches_apps(self):
        w = AppRelaunchWorkload(mbytes(0.2), apps=3, sessions=12, seed=1)
        assert w._schedule[0] == 0
        for prev, cur in zip(w._schedule, w._schedule[1:]):
            assert prev != cur  # a relaunch, never a foreground no-op

    def test_total_references_matches_emitted_count(self):
        w = AppRelaunchWorkload(mbytes(0.3), apps=3, sessions=5,
                                hot_passes=2, seed=2)
        assert len(drain(w)) == w.total_references()

    def test_apps_have_distinct_footprints(self):
        w = AppRelaunchWorkload(mbytes(0.3), apps=3)
        assert len(set(w._npages)) > 1

    def test_foreground_writes_are_emitted(self):
        refs = drain(AppRelaunchWorkload(mbytes(0.2), sessions=2))
        assert any(r.write for r in refs)
        assert not any(
            r.write for r in drain(
                AppRelaunchWorkload(mbytes(0.2), sessions=2, write=False)
            )
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="app_bytes"):
            AppRelaunchWorkload(0)
        with pytest.raises(ValueError, match="at least 2 apps"):
            AppRelaunchWorkload(mbytes(0.2), apps=1)
        with pytest.raises(ValueError, match="sessions"):
            AppRelaunchWorkload(mbytes(0.2), sessions=0)
        with pytest.raises(ValueError, match="hot_fraction"):
            AppRelaunchWorkload(mbytes(0.2), hot_fraction=1.5)
        with pytest.raises(ValueError, match="hot_passes"):
            AppRelaunchWorkload(mbytes(0.2), hot_passes=-1)


class TestDiurnal:
    def test_phase_sizes_form_a_triangle_wave(self):
        w = DiurnalWorkload(mbytes(0.4), phases=8, trough_fraction=0.25)
        sizes = w.phase_pages()
        assert len(sizes) == 8
        peak = max(sizes)
        assert sizes[0] == min(sizes)  # starts at the trough
        assert sizes.index(peak) == 4  # peaks mid-cycle
        assert peak == w.npages
        # Monotone rise then monotone fall.
        assert all(a <= b for a, b in zip(sizes[:5], sizes[1:5]))
        assert all(a >= b for a, b in zip(sizes[4:], sizes[5:]))

    def test_trough_respects_fraction(self):
        w = DiurnalWorkload(mbytes(0.4), trough_fraction=0.5)
        trough = max(1, int(w.npages * 0.5))
        assert min(w.phase_pages()) == trough

    def test_total_references_matches_emitted_count(self):
        w = DiurnalWorkload(mbytes(0.3), phases=6, passes_per_phase=3)
        assert len(drain(w)) == w.total_references()

    def test_stream_is_deterministic(self):
        def refs():
            w = DiurnalWorkload(mbytes(0.2), phases=4, seed=5)
            return [(r.page_id, r.write) for r in drain(w)]

        assert refs() == refs()

    def test_cold_pages_rest_for_whole_phases(self):
        """Pages above the trough vanish from the stream during the
        night phases — that cold tail is the controller's raw material."""
        w = DiurnalWorkload(mbytes(0.4), phases=8, passes_per_phase=1)
        sizes = w.phase_pages()
        refs = drain(w)
        # Split the flat stream back into per-phase chunks.
        start = 0
        seen_rest = False
        for active in sizes:
            chunk = refs[start:start + active]
            start += active
            numbers = {r.page_id.number for r in chunk}
            assert numbers == set(range(active))
            if active < w.npages:
                seen_rest = True
        assert seen_rest

    def test_validation(self):
        with pytest.raises(ValueError, match="space_bytes"):
            DiurnalWorkload(0)
        with pytest.raises(ValueError, match="phases"):
            DiurnalWorkload(mbytes(0.2), phases=1)
        with pytest.raises(ValueError, match="passes_per_phase"):
            DiurnalWorkload(mbytes(0.2), passes_per_phase=0)
        with pytest.raises(ValueError, match="trough_fraction"):
            DiurnalWorkload(mbytes(0.2), trough_fraction=0.0)
