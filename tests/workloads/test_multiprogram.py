"""Multiprogrammed workloads: shared spaces, interleaving, collective paging."""

import pytest

from repro.mem.page import mbytes
from repro.sim.engine import SimulationEngine
from repro.sim.machine import Machine, MachineConfig
from repro.workloads import MultiProgramWorkload, SyntheticWorkload, Thrasher


class TestComposition:
    def test_children_get_distinct_segments(self):
        multi = MultiProgramWorkload(
            [Thrasher(4 * 4096, cycles=1), Thrasher(4 * 4096, cycles=1)]
        )
        space = multi.build()
        segments = {ref.page_id.segment for ref in multi.references()}
        assert len(segments) == 2
        assert space.total_pages == 8

    def test_round_robin_interleaving(self):
        a = Thrasher(8 * 4096, cycles=1, write=False)
        b = Thrasher(8 * 4096, cycles=1, write=False)
        multi = MultiProgramWorkload([a, b], quantum=2)
        multi.build()
        refs = list(multi.references())
        # First quantum from program a, then two from b, and so on.
        segments = [ref.page_id.segment for ref in refs[:8]]
        assert segments == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_uneven_lengths_drain(self):
        short = Thrasher(2 * 4096, cycles=1)
        long = Thrasher(8 * 4096, cycles=2)
        multi = MultiProgramWorkload([short, long], quantum=4)
        multi.build()
        refs = list(multi.references())
        assert len(refs) == 2 + 16

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiProgramWorkload([])
        with pytest.raises(ValueError):
            MultiProgramWorkload([Thrasher(4096)], quantum=0)
        with pytest.raises(ValueError):
            MultiProgramWorkload([
                Thrasher(4096),
                Thrasher(8192, page_size=8192),
            ])

    def test_child_cannot_be_built_twice(self):
        child = Thrasher(4 * 4096)
        child.build()
        with pytest.raises(RuntimeError):
            MultiProgramWorkload([child]).build()

    def test_name_combines_children(self):
        multi = MultiProgramWorkload(
            [Thrasher(4096, write=True), Thrasher(4096, write=False)]
        )
        assert multi.name == "thrasher_rw+thrasher_ro"


class TestCollectivePaging:
    def test_two_fitting_programs_thrash_together(self):
        """Each program alone fits in memory; together they don't —
        Section 3's premise for why compression still needs a backing
        store and why the allocator is machine-wide."""
        def build(cc):
            programs = [
                SyntheticWorkload(mbytes(0.4), references=1500, seed=s,
                                  hot_probability=0.9, hot_fraction=0.9)
                for s in (1, 2, 3)
            ]
            return MultiProgramWorkload(programs, quantum=32), MachineConfig(
                memory_bytes=mbytes(0.7), compression_cache=cc
            )

        multi, config = build(False)
        machine = Machine(config, multi.build())
        result = SimulationEngine(machine).run(multi.references())
        # Collective working set ~1.2 MB on 0.7 MB: real paging happens.
        assert result.metrics_snapshot["faults"]["total"] > 450

        multi_cc, config_cc = build(True)
        machine_cc = Machine(config_cc, multi_cc.build())
        result_cc = SimulationEngine(machine_cc).run(multi_cc.references())
        # The collective compressed set fits: the cache absorbs the
        # inter-program interference.
        assert result_cc.elapsed_seconds < result.elapsed_seconds

    def test_quantum_affects_interference(self):
        def run(quantum):
            programs = [
                Thrasher(mbytes(0.4), cycles=3, write=True, seed=s)
                for s in (1, 2)
            ]
            multi = MultiProgramWorkload(programs, quantum=quantum)
            machine = Machine(
                MachineConfig(memory_bytes=mbytes(0.5),
                              compression_cache=False),
                multi.build(),
            )
            return SimulationEngine(machine).run(
                multi.references()
            ).elapsed_seconds

        # Tiny quanta drag both working sets through memory constantly.
        assert run(4) >= run(1024) * 0.9
