"""The five paper applications: stream shape and determinism."""


import pytest

from repro.mem.page import mbytes
from repro.workloads import (
    CacheSimWorkload,
    CompareWorkload,
    GoldWorkload,
    SortWorkload,
    SyntheticWorkload,
    Thrasher,
)


class TestThrasher:
    def test_cycles_linearly(self):
        workload = Thrasher(8 * 4096, cycles=2, write=False)
        workload.build()
        numbers = [ref.page_id.number for ref in workload.references()]
        assert numbers == list(range(8)) * 2

    def test_rw_variant_mutates(self):
        workload = Thrasher(4 * 4096, cycles=1, write=True)
        workload.build()
        refs = list(workload.references())
        assert all(ref.write and ref.mutate is not None for ref in refs)

    def test_ro_variant_reads(self):
        workload = Thrasher(4 * 4096, cycles=1, write=False)
        workload.build()
        assert not any(ref.write for ref in workload.references())

    def test_total_references(self):
        workload = Thrasher(10 * 4096, cycles=3)
        assert workload.total_references() == 30

    def test_write_mutation_changes_one_word(self):
        workload = Thrasher(2 * 4096, cycles=1, write=True)
        workload.build()
        ref = next(workload.references())
        pte = workload.address_space.entry(ref.page_id)
        before = pte.content.materialize()
        ref.mutate(pte.content)
        after = pte.content.materialize()
        assert before != after
        diffs = sum(a != b for a, b in zip(before, after))
        assert diffs <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            Thrasher(0)
        with pytest.raises(ValueError):
            Thrasher(4096, cycles=0)


class TestCompare:
    def test_forward_then_backward(self):
        workload = CompareWorkload(4 * 4096, round_trips=1)
        workload.build()
        numbers = [ref.page_id.number for ref in workload.references()]
        # Forward fill interleaves previous-row reads; backward is reverse.
        assert numbers[-4:] == [3, 2, 1, 0]
        assert numbers[0] == 0

    def test_fill_writes_traceback_reads(self):
        workload = CompareWorkload(4 * 4096, round_trips=1)
        workload.build()
        refs = list(workload.references())
        fill = refs[: len(refs) - 4]
        traceback_refs = refs[-4:]
        assert any(ref.write for ref in fill)
        assert not any(ref.write for ref in traceback_refs)

    def test_total_references_matches(self):
        workload = CompareWorkload(6 * 4096, round_trips=2)
        workload.build()
        assert len(list(workload.references())) == workload.total_references()

    def test_cell_compute_charged(self):
        workload = CompareWorkload(2 * 4096, round_trips=1,
                                   cell_seconds=1e-6)
        workload.build()
        writes = [ref for ref in workload.references() if ref.write]
        assert all(ref.compute_seconds == pytest.approx(1024e-6)
                   for ref in writes)


class TestCacheSim:
    def test_deterministic_stream(self):
        a = CacheSimWorkload(mbytes(1), events=500, seed=4)
        b = CacheSimWorkload(mbytes(1), events=500, seed=4)
        a.build(), b.build()
        assert (
            [(r.page_id, r.write) for r in a.references()]
            == [(r.page_id, r.write) for r in b.references()]
        )

    def test_hot_set_dominates(self):
        workload = CacheSimWorkload(
            mbytes(1), events=2000, hot_fraction=0.25, hot_probability=0.8
        )
        workload.build()
        hot_pages = int(workload.npages * 0.25)
        hot = sum(
            1 for ref in workload.references()
            if ref.page_id.number < hot_pages
        )
        total = len(list(workload.references()))
        assert hot / total > 0.6

    def test_miss_rate_controls_writes(self):
        workload = CacheSimWorkload(mbytes(1), events=2000, miss_rate=0.0,
                                    remote_rate=0.0)
        workload.build()
        assert not any(ref.write for ref in workload.references())

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheSimWorkload(mbytes(1), events=0)
        with pytest.raises(ValueError):
            CacheSimWorkload(mbytes(1), events=10, hot_fraction=0.0)


class TestSort:
    def test_initial_load_then_partitions(self):
        workload = SortWorkload(16 * 4096, partial=True,
                                pointer_overhead=0.0)
        workload.build()
        numbers = [ref.page_id.number for ref in workload.references()]
        assert numbers[:16] == list(range(16))  # sequential load
        assert len(numbers) > 32  # recursion adds passes

    def test_partition_touches_both_ends(self):
        workload = SortWorkload(16 * 4096, partial=True,
                                pointer_overhead=0.0)
        workload.build()
        numbers = [ref.page_id.number for ref in workload.references()]
        after_load = numbers[16:]
        assert after_load[0] == 0
        assert after_load[1] == 15  # two-pointer sweep

    def test_variant_names(self):
        assert SortWorkload(4096, partial=True).name == "sort_partial"
        assert SortWorkload(4096, partial=False).name == "sort_random"

    def test_compressible_fraction_defaults(self):
        assert SortWorkload(4096, partial=True).compressible_fraction == 0.51
        assert SortWorkload(4096, partial=False).compressible_fraction == 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            SortWorkload(0, partial=True)
        with pytest.raises(ValueError):
            SortWorkload(4096, partial=True, compressible_fraction=2.0)


class TestGold:
    def test_modes(self):
        for mode in GoldWorkload.MODES:
            workload = GoldWorkload(mode, mbytes(1), operations=10)
            workload.build()
            assert len(list(workload.references())) > 0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            GoldWorkload("hot", mbytes(1), operations=10)

    def test_create_is_write_heavy(self):
        """'It has a high degree of write accesses' — appends dominate,
        with chain-walk reads mixed in."""
        workload = GoldWorkload("create", mbytes(1), operations=100)
        workload.build()
        refs = list(workload.references())
        writes = sum(ref.write for ref in refs)
        assert writes / len(refs) > 0.6

    def test_warm_is_read_mostly(self):
        workload = GoldWorkload("warm", mbytes(1), operations=100)
        workload.build()
        refs = list(workload.references())
        writes = sum(ref.write for ref in refs)
        assert writes / len(refs) < 0.1

    def test_cold_setup_touches_index(self):
        workload = GoldWorkload("cold", mbytes(1), operations=10)
        setup = list(workload.setup_references())
        assert len(setup) == workload.index_pages

    def test_warm_setup_includes_query_pass(self):
        cold = GoldWorkload("cold", mbytes(1), operations=10)
        warm = GoldWorkload("warm", mbytes(1), operations=10)
        assert (
            len(list(warm.setup_references()))
            > len(list(cold.setup_references()))
        )

    def test_create_has_no_setup(self):
        workload = GoldWorkload("create", mbytes(1), operations=10)
        assert list(workload.setup_references()) == []


class TestSynthetic:
    def test_sequential_mode(self):
        workload = SyntheticWorkload(4 * 4096, references=8,
                                     sequential=True, write_fraction=0.0)
        workload.build()
        numbers = [ref.page_id.number for ref in workload.references()]
        assert numbers == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_reference_count_exact(self):
        workload = SyntheticWorkload(mbytes(1), references=123)
        workload.build()
        assert len(list(workload.references())) == 123
        assert workload.total_references() == 123

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(0, references=1)
        with pytest.raises(ValueError):
            SyntheticWorkload(4096, references=1, write_fraction=1.5)


class TestBase:
    def test_build_idempotent(self):
        workload = Thrasher(4 * 4096)
        assert workload.build() is workload.build()

    def test_address_space_before_build_raises(self):
        with pytest.raises(RuntimeError):
            Thrasher(4 * 4096).address_space

    def test_compute_seconds_per_ref_applied(self):
        workload = Thrasher(2 * 4096, cycles=1, write=False)
        workload.compute_seconds_per_ref = 0.5
        workload.build()
        refs = list(workload.references())
        assert all(ref.compute_seconds == 0.5 for ref in refs)

    def test_reference_count_helper(self):
        workload = Thrasher(3 * 4096, cycles=2)
        workload.build()
        assert workload.reference_count() == 6
